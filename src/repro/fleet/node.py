"""One cache node of a fleet: an MTCache behind a simulated network.

:class:`FleetNode` extends :class:`~repro.cache.mtcache.MTCache` with the
three things a fleet member needs:

* every back-end call goes through the shared
  :class:`~repro.fleet.network.SimulatedNetwork` with retry + exponential
  backoff, feeding a per-node :class:`~repro.fleet.breaker.CircuitBreaker`;
* currency guards become *availability-aware*: when the guard wants the
  remote branch but the back-end is unreachable (outage window or open
  breaker), the node degrades instead of erroring — it serves the local
  (stale) rows with a constraint-violation warning, exactly the
  ``serve_stale`` behavior of its
  :class:`~repro.cache.mtcache.FallbackPolicy`; nodes configured with the
  ``error`` policy already abort at the guard and never reach this path;
* its distribution agents honor injected stall windows, so experiments
  can let one node's regions fall behind the rest of the fleet.

Remote-only plans (currency bound 0, shipped subqueries) have no local
branch to degrade to; those calls *ride out* short outages by retrying on
the simulated clock — waiting out breaker cooldowns — up to
``max_remote_wait`` simulated seconds before the failure propagates.
"""

from repro.cache.mtcache import MTCache
from repro.common.errors import CircuitOpenError, NetworkError
from repro.fleet.breaker import CircuitBreaker
from repro.obs.metrics import NULL_REGISTRY


class FleetNode(MTCache):
    """An MTCache that reaches its back-end over a simulated network."""

    def __init__(self, name, backend, network, *, fleet_metrics=None,
                 failure_threshold=3, reset_timeout=5.0, max_remote_wait=60.0,
                 retry_backoff=0.25, **mtcache_kwargs):
        self.name = name
        self.network = network
        self.fleet_metrics = fleet_metrics if fleet_metrics is not None else NULL_REGISTRY
        self.breaker = CircuitBreaker(
            backend.clock,
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            registry=self.fleet_metrics,
            name=name,
        )
        #: Ceiling (simulated seconds) a remote-only call may spend riding
        #: out drops, outages and breaker cooldowns before giving up.
        self.max_remote_wait = max_remote_wait
        self.retry_backoff = retry_backoff
        #: Router bookkeeping (FleetRouter maintains these).
        self.inflight = 0
        self.queries_routed = 0
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        super().__init__(backend, **mtcache_kwargs)

    # ------------------------------------------------------------------
    # Back-end access
    # ------------------------------------------------------------------
    def remote_available(self):
        """Would a remote call have a chance right now?  Used by guards
        to decide between the remote branch and graceful degradation."""
        return self.network.backend_available() and self.breaker.available()

    def remote_executor(self, sql):
        """Back-end call with retry/backoff over the simulated network.

        Failed attempts feed the circuit breaker; an open breaker is
        waited out on the simulated clock (modelling client retry-after)
        rather than busy-looped.  Gives up — re-raising the last network
        error — once ``max_remote_wait`` simulated seconds have passed.
        """
        clock = self.clock
        deadline = clock.now() + self.max_remote_wait
        attempt = 0
        while True:
            if not self.breaker.available():
                wait = min(self.breaker.retry_at, deadline) - clock.now()
                if wait > 0:
                    self.network.sleep(wait)
                if clock.now() >= deadline and not self.breaker.available():
                    raise CircuitOpenError(
                        f"breaker open on {self.name}: back-end calls refused"
                    )
                continue
            try:
                rows = self.network.call(
                    self.backend.execute_remote, sql, node=self.name,
                    trace=self.metrics.active_trace,
                )
            except NetworkError as exc:
                self.breaker.record_failure()
                attempt += 1
                self.fleet_metrics.counter(
                    "fleet_retries_total",
                    labels={"node": self.name, "reason": exc.reason},
                    help="failed back-end attempts that were retried",
                ).inc()
                if clock.now() >= deadline:
                    raise
                if self.breaker.available():
                    # Exponential backoff between attempts while closed;
                    # an open breaker's cooldown paces us instead.
                    self.network.sleep(
                        self.retry_backoff * (2.0 ** min(attempt - 1, 5))
                    )
                continue
            self.breaker.record_success()
            return rows

    # ------------------------------------------------------------------
    # Availability-aware currency guards
    # ------------------------------------------------------------------
    def make_currency_guard(self, view, bound):
        """Wrap the base guard with the degraded mode.

        When the guard picks the remote branch but the back-end is
        unreachable, serve the stale local rows with a warning instead of
        letting the remote branch fail — availability over currency, the
        coordination-avoidance trade the fleet exists to demonstrate.
        """
        base = super().make_currency_guard(view, bound)
        node = self

        def selector(ctx):
            choice = base(ctx)
            if choice == 1 and not node.remote_available():
                ctx.record_warning(
                    f"degraded: back-end unreachable from {node.name}; serving "
                    f"{view.name} beyond its {bound:g}s bound"
                )
                ctx.record_snapshot(view.snapshot_time)
                node.metrics.counter(
                    "currency_guard_degraded_total", labels={"view": view.name},
                    help="guard fallbacks forced by back-end unavailability",
                ).inc()
                node.fleet_metrics.counter(
                    "fleet_degraded_total",
                    labels={"node": node.name, "policy": node.fallback_policy},
                    help="queries served stale because the back-end was down",
                ).inc()
                node.metrics.event(
                    "degraded",
                    f"back-end unreachable from {node.name}; serving "
                    f"{view.name} beyond its {bound:g}s bound",
                    severity="warning", time=node.clock.now(),
                    node=node.name, view=view.name,
                )
                return 0
            return choice

        return selector

    # ------------------------------------------------------------------
    # Replication under the network
    # ------------------------------------------------------------------
    def create_region(self, cid, update_interval, update_delay, heartbeat_interval=2.0):
        region = super().create_region(
            cid, update_interval, update_delay, heartbeat_interval=heartbeat_interval
        )
        # Route the agent's wakes through the network's stall windows; the
        # scheduler captured the unwrapped bound method, so restart it.
        agent = self.agents[cid]
        self.network.wrap_agent(agent, node=self.name)
        agent.start(self.scheduler, interval=update_interval)
        return region

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_staleness(self):
        """Worst guaranteed staleness bound across this node's regions.

        None when any region has not seen a heartbeat yet (unknown is
        treated as infinitely stale by the staleness-aware router).
        """
        worst = None
        for agent in self.agents.values():
            bound = agent.staleness_bound()
            if bound is None:
                return None
            if worst is None or bound > worst:
                worst = bound
        return worst

    def __repr__(self):
        return (
            f"<FleetNode {self.name} breaker={self.breaker.state.value} "
            f"routed={self.queries_routed}>"
        )
