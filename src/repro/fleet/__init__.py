"""repro.fleet — a multi-node cache fleet over one back-end.

The paper's deployment story is a *farm* of MTCache front-ends absorbing
read load for a single master; this package makes that story runnable:

* :class:`CacheFleet` — N :class:`FleetNode` caches sharing one
  :class:`~repro.cache.backend.BackendServer`, with fleet-wide DDL
  helpers and a fleet-level metrics registry;
* :class:`FleetRouter` — the front door, with pluggable routing policies
  (:data:`~repro.fleet.routing.POLICIES`: round-robin, least-loaded, and
  the C&C-specific *staleness-aware* policy that prefers nodes already
  fresh enough for the query's currency bound);
* :class:`SimulatedNetwork` — the unreliable cache↔back-end link:
  injectable latency, drops, timeouts, back-end outage windows and
  distribution-agent stalls, all on the deterministic simulated clock;
* :class:`CircuitBreaker` — per-node back-end health tracking; an open
  breaker makes guards degrade (serve stale + warning) instead of error;
* :class:`NodeLifecycle` — crash recovery: nodes can
  :meth:`~FleetNode.crash` (in-memory views, plan cache and heartbeats
  lost), :meth:`~FleetNode.restart` (cold rebuild + warm-up window),
  :meth:`~FleetNode.drain` and :meth:`~FleetNode.resume`; the router
  skips crashed/draining nodes and prefers fully-UP peers over WARMING
  ones.  Stalled distribution agents fail over to standbys via
  :class:`~repro.replication.failover.AgentSupervisor` when nodes are
  built with ``failover_threshold=...``.

Quickstart::

    from repro import BackendServer
    from repro.fleet import CacheFleet

    backend = BackendServer()
    ...  # create tables, insert, refresh_statistics()

    fleet = CacheFleet(backend, n_nodes=3, policy="staleness_aware")
    fleet.create_region("r", update_interval=10, update_delay=2)
    fleet.create_matview("t_copy", "t", ["id", "v"], region="r")
    fleet.run_for(15)

    fleet.network.inject_outage(2.0)       # back-end goes dark for 2 s
    result = fleet.execute(
        "SELECT t.id FROM t CURRENCY BOUND 60 SEC ON (t)"
    )
    print(result.node, result.routing, result.warnings)
"""

from repro.fleet.breaker import BreakerState, CircuitBreaker
from repro.fleet.config import FleetConfig
from repro.fleet.fleet import CacheFleet, FleetRouter
from repro.fleet.network import FaultWindow, SimulatedNetwork
from repro.fleet.node import FleetNode, NodeLifecycle
from repro.fleet.routing import (
    POLICIES,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    StalenessAwarePolicy,
    bound_from_sql,
    make_policy,
)

__all__ = [
    "BreakerState",
    "CacheFleet",
    "CircuitBreaker",
    "FaultWindow",
    "FleetConfig",
    "FleetNode",
    "FleetRouter",
    "LeastLoadedPolicy",
    "NodeLifecycle",
    "POLICIES",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "SimulatedNetwork",
    "StalenessAwarePolicy",
    "bound_from_sql",
    "make_policy",
]
