"""Unit tests for placement internals: index matching, selectivity
combination, and width computation."""

import pytest

from repro.catalog.statistics import ColumnStats, TableStats
from repro.engine.expressions import OutputCol, RowBinding
from repro.optimizer.placement import (
    _match_index,
    combine_conjuncts,
    estimate_selectivity,
    width_of,
)
from repro.optimizer.query_info import Sarg
from repro.sql.parser import parse_expression
from repro.storage.index import Index


def sarg(column, op, value, text=None):
    expr = parse_expression(text or f"{column} {op} {value}")
    return Sarg(column, op, value, expr)


class TestMatchIndex:
    def make_index(self, *columns):
        return Index("ix", list(columns), list(range(len(columns))))

    def test_single_equality(self):
        plan = _match_index(self.make_index("a"), [sarg("a", "=", 5)])
        eq_values, lo, hi, *_ = plan
        assert eq_values == [5]
        assert lo is None and hi is None

    def test_equality_prefix_plus_range(self):
        plan = _match_index(
            self.make_index("a", "b"),
            [sarg("a", "=", 5), sarg("b", ">", 1), sarg("b", "<=", 9)],
        )
        eq_values, lo, hi, lo_inc, hi_inc, used = plan
        assert eq_values == [5]
        assert (lo, hi) == (1, 9)
        assert not lo_inc and hi_inc
        assert len(used) == 3

    def test_leading_range_only(self):
        plan = _match_index(self.make_index("a", "b"), [sarg("a", ">=", 3)])
        eq_values, lo, hi, lo_inc, _, _ = plan
        assert eq_values == []
        assert lo == 3 and lo_inc

    def test_no_leading_column_match(self):
        assert _match_index(self.make_index("a", "b"), [sarg("b", "=", 1)]) is None

    def test_no_sargs(self):
        assert _match_index(self.make_index("a"), []) is None

    def test_tightest_range_bound_wins(self):
        plan = _match_index(
            self.make_index("a"),
            [sarg("a", ">", 1), sarg("a", ">=", 5)],
        )
        _, lo, _, lo_inc, _, _ = plan
        assert lo == 5 and lo_inc

    def test_gap_in_prefix_stops_matching(self):
        plan = _match_index(
            self.make_index("a", "b", "c"),
            [sarg("a", "=", 1), sarg("c", "=", 3)],
        )
        eq_values, lo, hi, *_ = plan
        assert eq_values == [1]
        assert lo is None and hi is None


class TestEstimateSelectivity:
    def stats(self):
        return TableStats(
            row_count=1000,
            columns={
                "a": ColumnStats(min=0, max=99, ndv=100),
                "b": ColumnStats(min=0.0, max=1.0, ndv=500),
            },
        )

    def test_equality_uses_ndv(self):
        s = sarg("a", "=", 5)
        assert estimate_selectivity(self.stats(), [s.expr], [s]) == pytest.approx(0.01)

    def test_range_combines_bounds(self):
        lo = sarg("a", ">=", 0)
        hi = sarg("a", "<=", 49)
        sel = estimate_selectivity(self.stats(), [lo.expr, hi.expr], [lo, hi])
        assert sel == pytest.approx(0.495, abs=0.02)

    def test_unsargable_conjunct_default(self):
        expr = parse_expression("a + b > 3")
        sel = estimate_selectivity(self.stats(), [expr], [])
        assert sel == pytest.approx(0.25)

    def test_conjunction_multiplies(self):
        s1 = sarg("a", "=", 5)
        s2 = sarg("b", "<=", 0.5)
        sel = estimate_selectivity(self.stats(), [s1.expr, s2.expr], [s1, s2])
        assert sel == pytest.approx(0.01 * 0.5, rel=0.1)

    def test_never_zero(self):
        s = sarg("a", ">", 1000)
        assert estimate_selectivity(self.stats(), [s.expr], [s]) > 0.0

    def test_empty_predicates(self):
        assert estimate_selectivity(self.stats(), [], []) == 1.0


class TestHelpers:
    def test_combine_conjuncts_none(self):
        assert combine_conjuncts([]) is None

    def test_combine_conjuncts_single(self):
        expr = parse_expression("a = 1")
        assert combine_conjuncts([expr]) is expr

    def test_combine_conjuncts_multiple_is_and_tree(self):
        a, b, c = (parse_expression(t) for t in ("a = 1", "b = 2", "c = 3"))
        combined = combine_conjuncts([a, b, c])
        assert combined.op == "and"
        assert "a = 1" in combined.to_sql()
        assert "c = 3" in combined.to_sql()

    def test_width_of_uses_stats(self):
        binding = RowBinding([OutputCol("x", "t"), OutputCol("y", "t")])
        widths = {"x": ColumnStats(avg_width=4), "y": ColumnStats(avg_width=16)}
        total = width_of(binding, lambda q, n: widths.get(n))
        assert total == 20

    def test_width_of_unknown_column_default(self):
        binding = RowBinding([OutputCol("z", "t")])
        assert width_of(binding, lambda q, n: None) == 8.0
