"""Tests for the MTCache query log and its CLI view."""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache, QueryLog, QueryLogEntry
from repro.cli import run_script


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


LOCAL_Q = "SELECT x.id FROM t x CURRENCY BOUND 600 SEC ON (x)"
REMOTE_Q = "SELECT x.id FROM t x"


class TestQueryLog:
    def test_entries_recorded(self, cache):
        cache.execute(LOCAL_Q)
        cache.execute(REMOTE_Q)
        assert len(cache.query_log) == 2
        local, remote = cache.query_log.recent(2)
        assert local.served_locally
        assert not remote.served_locally
        assert remote.remote_queries

    def test_entry_fields(self, cache):
        cache.execute(LOCAL_Q)
        (entry,) = cache.query_log.recent(1)
        assert entry.sql == LOCAL_Q
        assert entry.summary == "guarded(t_copy)"
        assert entry.rows == 2
        assert entry.elapsed >= 0
        assert entry.sim_time == cache.clock.now()

    def test_ring_buffer_capacity(self, cache):
        cache.query_log.capacity = 3
        for _ in range(6):
            cache.execute(LOCAL_Q)
        assert len(cache.query_log) == 3

    def test_summary(self, cache):
        cache.execute(LOCAL_Q)
        cache.execute(LOCAL_Q)
        cache.execute(REMOTE_Q)
        stats = cache.query_log.summary()
        assert stats["queries"] == 3
        assert stats["local"] == 2
        assert stats["local_fraction"] == pytest.approx(2 / 3)
        assert stats["remote_queries"] == 1

    def test_warnings_captured(self, cache):
        cache.fallback_policy = "serve_stale"
        cache.run_for(4.0)
        cache.execute("SELECT x.id FROM t x CURRENCY BOUND 3 SEC ON (x)")
        (entry,) = cache.query_log.recent(1)
        assert entry.warnings

    def test_clear(self, cache):
        cache.execute(LOCAL_Q)
        cache.query_log.clear()
        assert len(cache.query_log) == 0

    def test_empty_summary(self):
        stats = QueryLog().summary()
        assert stats == {
            "queries": 0,
            "local": 0,
            "local_fraction": 0.0,
            "remote_queries": 0,
        }


class TestCliLog:
    def test_log_command(self, cache):
        out = io.StringIO()
        run_script(cache, [LOCAL_Q, REMOTE_Q, "\\log"], out=out)
        text = out.getvalue()
        assert "local" in text
        assert "remote/mixed" in text
        assert "50% local" in text

    def test_log_empty(self, cache):
        out = io.StringIO()
        run_script(cache, ["\\log"], out=out)
        assert "(no queries logged)" in out.getvalue()

    def test_log_limit(self, cache):
        out = io.StringIO()
        run_script(cache, [LOCAL_Q, LOCAL_Q, LOCAL_Q, "\\log 1"], out=out)
        assert out.getvalue().count("guarded(t_copy)") >= 1
