"""Tests for consistency plan properties and the §3.2.2 rules."""

import pytest

from repro.cc.constraint import CCConstraint, CCTuple
from repro.cc.properties import (
    BACKEND_REGION,
    ConsistencyProperty,
    is_conflicting,
    satisfies,
    violates,
    violates_paper_literal,
)


def prop(*groups):
    return ConsistencyProperty(groups)


def req(*tuples):
    return CCConstraint([CCTuple(bound, ops) for bound, ops in tuples])


class TestPropertyAlgebra:
    def test_single(self):
        p = ConsistencyProperty.single("r1", ["a", "b"])
        assert p.operands == {"a", "b"}
        assert p.region_of("a") == "r1"

    def test_copy_passthrough(self):
        p = prop(("r1", {"a"}))
        assert p.copy() == p

    def test_join_disjoint_regions(self):
        p = prop(("r1", {"a"})).join(prop(("r2", {"b"})))
        assert len(p.groups) == 2

    def test_join_merges_same_region(self):
        p = prop(("r1", {"a"})).join(prop(("r1", {"b"})))
        assert len(p.groups) == 1
        assert p.groups[0][1] == frozenset({"a", "b"})

    def test_join_backend_merges(self):
        p = prop((BACKEND_REGION, {"a"})).join(prop((BACKEND_REGION, {"b"})))
        assert p.groups[0][1] == frozenset({"a", "b"})

    def test_region_of_missing(self):
        assert prop(("r1", {"a"})).region_of("z") is None


class TestSwitchUnionProperty:
    def test_same_grouping_in_all_children_stays_grouped(self):
        child1 = prop(("r1", {"a", "b"}))
        child2 = prop((BACKEND_REGION, {"a", "b"}))
        result = ConsistencyProperty.switch_union([child1, child2])
        assert len(result.groups) == 1
        region, operands = result.groups[0]
        assert operands == frozenset({"a", "b"})
        assert region == ("r1", BACKEND_REGION)

    def test_divergent_grouping_splits(self):
        # Child 1 groups a,b together; child 2 splits them -> the
        # SwitchUnion can only guarantee them separately.
        child1 = prop(("r1", {"a", "b"}))
        child2 = prop(("r2", {"a"}), ("r3", {"b"}))
        result = ConsistencyProperty.switch_union([child1, child2])
        assert len(result.groups) == 2

    def test_mismatched_operands_raise(self):
        with pytest.raises(ValueError):
            ConsistencyProperty.switch_union([prop(("r1", {"a"})), prop(("r1", {"b"}))])

    def test_empty_children(self):
        assert ConsistencyProperty.switch_union([]).groups == []


class TestConflictRule:
    def test_same_operand_two_regions_conflicts(self):
        # Paper's example: joining two projection views of T from different
        # regions delivers {<R1, T>, <R2, T>} -> conflicting.
        assert is_conflicting(prop(("r1", {"t"}), ("r2", {"t"})))

    def test_same_operand_same_region_groups_do_not_conflict(self):
        assert not is_conflicting(prop(("r1", {"t"}), ("r1", {"t"})))

    def test_disjoint_groups_do_not_conflict(self):
        assert not is_conflicting(prop(("r1", {"a"}), ("r2", {"b"})))


class TestSatisfactionRule:
    def test_class_inside_one_group_satisfies(self):
        delivered = prop(("r1", {"a", "b", "c"}))
        assert satisfies(delivered, req((10.0, ["a", "b"])))

    def test_class_spanning_groups_fails(self):
        delivered = prop(("r1", {"a"}), ("r2", {"b"}))
        assert not satisfies(delivered, req((10.0, ["a", "b"])))

    def test_two_singleton_classes_satisfied_by_separate_groups(self):
        delivered = prop(("r1", {"a"}), ("r2", {"b"}))
        assert satisfies(delivered, req((10.0, ["a"]), (20.0, ["b"])))

    def test_backend_group_satisfies_everything(self):
        delivered = prop((BACKEND_REGION, {"a", "b", "c"}))
        assert satisfies(delivered, req((0.0, ["a", "b"]), (5.0, ["c"])))

    def test_conflicting_never_satisfies(self):
        delivered = prop(("r1", {"a"}), ("r2", {"a", "b"}))
        assert not satisfies(delivered, req((10.0, ["a"])))

    def test_empty_constraint_satisfied(self):
        assert satisfies(prop(("r1", {"a"})), req())


class TestViolationRule:
    def test_conflicting_violates(self):
        delivered = prop(("r1", {"t"}), ("r2", {"t"}))
        assert violates(delivered, req((10.0, ["t"])))

    def test_class_split_across_regions_violates(self):
        # The paper's Q3 situation: cust_prj in CR1, orders_prj in CR2,
        # required single class -> prune early.
        delivered = prop(("cr1", {"c"}), ("cr2", {"o"}))
        assert violates(delivered, req((600.0, ["c", "o"])))

    def test_class_split_local_vs_backend_violates(self):
        delivered = prop(("cr1", {"c"}), (BACKEND_REGION, {"o"}))
        assert violates(delivered, req((600.0, ["c", "o"])))

    def test_partial_plan_covering_part_of_class_ok(self):
        # Only c present so far; o may still join the same group later.
        delivered = prop(("cr1", {"c"}))
        assert not violates(delivered, req((600.0, ["c", "o"])))

    def test_backend_group_spanning_classes_does_not_violate(self):
        # This is where we deviate from the paper's literal rule: the
        # full-remote plan must never be pruned.
        delivered = prop((BACKEND_REGION, {"a", "b"}))
        required = req((10.0, ["a"]), (10.0, ["b"]))
        assert not violates(delivered, required)
        assert satisfies(delivered, required)

    def test_paper_literal_rule_would_prune_remote_plan(self):
        # Documenting the paper's rule (2) as printed: it prunes the plan
        # the satisfaction rule accepts.
        delivered = prop((BACKEND_REGION, {"a", "b"}))
        required = req((10.0, ["a"]), (10.0, ["b"]))
        assert violates_paper_literal(delivered, required)

    def test_violation_is_sound_wrt_satisfaction(self):
        # Anything that violates must not satisfy.
        cases = [
            (prop(("r1", {"a"}), ("r2", {"b"})), req((1.0, ["a", "b"]))),
            (prop(("r1", {"t"}), ("r2", {"t"})), req((1.0, ["t"]))),
        ]
        for delivered, required in cases:
            if violates(delivered, required):
                assert not satisfies(delivered, required)

    def test_guarded_region_ids_compare_structurally(self):
        g1 = ("guarded", "cr1", 600.0)
        g2 = ("guarded", "cr1", 600.0)
        delivered = prop((g1, {"a"})).join(prop((g2, {"b"})))
        assert len(delivered.groups) == 1
        assert satisfies(delivered, req((600.0, ["a", "b"])))

    def test_guarded_different_bounds_do_not_merge(self):
        delivered = prop((("guarded", "cr1", 600.0), {"a"})).join(
            prop((("guarded", "cr1", 30.0), {"b"}))
        )
        assert len(delivered.groups) == 2
        assert not satisfies(delivered, req((600.0, ["a", "b"])))
