"""Tests for C&C constraints and normalization (paper §2, §3.2.1).

The example clauses E1–E4 (Figure 2.1) and multi-block queries Q2/Q3
(Figure 2.2) are exercised exactly as printed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConsistencyError
from repro.cc.constraint import CCConstraint, CCTuple, constraint_from_select
from repro.sql import ast
from repro.sql.parser import parse


def normalized(sql):
    constraint, operands = constraint_from_select(parse(sql))
    return constraint, operands


JOIN = (
    "SELECT b.isbn, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn"
)


class TestPaperExamplesSingleBlock:
    def test_e1_shared_bound_one_class(self):
        constraint, _ = normalized(JOIN + " CURRENCY BOUND 10 MIN ON (b, r)")
        assert len(constraint) == 1
        t = constraint.tuples[0]
        assert t.bound == 600.0
        assert t.operands == frozenset({"b", "r"})

    def test_e2_two_classes_different_bounds(self):
        constraint, _ = normalized(
            JOIN + " CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)"
        )
        assert len(constraint) == 2
        assert constraint.bound_for("b") == 600.0
        assert constraint.bound_for("r") == 1800.0
        assert constraint.class_of("b") == frozenset({"b"})

    def test_e3_by_columns_preserved(self):
        constraint, _ = normalized(
            JOIN + " CURRENCY BOUND 10 MIN ON (b) BY b.isbn, 30 MIN ON (r) BY r.isbn"
        )
        by_cols = {
            c.to_sql() for t in constraint for c in t.by_columns
        }
        assert by_cols == {"b.isbn", "r.isbn"}

    def test_e4_single_class_with_grouping(self):
        constraint, _ = normalized(
            JOIN + " CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn"
        )
        assert len(constraint) == 1
        assert constraint.tuples[0].operands == frozenset({"b", "r"})


class TestDefaults:
    def test_no_clause_gives_tight_default(self):
        constraint, operands = normalized(JOIN)
        assert operands == {"b", "r"}
        assert len(constraint) == 1
        t = constraint.tuples[0]
        assert t.bound == 0.0
        assert t.operands == frozenset({"b", "r"})

    def test_unmentioned_operand_gets_zero_singleton(self):
        constraint, _ = normalized(JOIN + " CURRENCY BOUND 10 MIN ON (b)")
        assert constraint.bound_for("b") == 600.0
        assert constraint.bound_for("r") == 0.0
        assert constraint.class_of("r") == frozenset({"r"})

    def test_bound_for_unknown_operand_unbounded(self):
        constraint, _ = normalized(JOIN + " CURRENCY BOUND 10 MIN ON (b, r)")
        assert constraint.bound_for("zzz") == ast.UNBOUNDED


class TestMultiBlock:
    def test_paper_q2_derived_table_merges_to_five_minutes(self):
        # Figure 2.2 Q2: outer "5 min on (s, t)" with derived table t over
        # (b, r) at "10 min on (b, r)" -> least restrictive satisfying
        # constraint is "5 min on (s, b, r)".
        sql = (
            "SELECT s.qty, t.isbn FROM sales s, "
            "(SELECT b.isbn AS isbn FROM books b, reviews r "
            " WHERE b.isbn = r.isbn CURRENCY BOUND 10 MIN ON (b, r)) t "
            "WHERE s.isbn = t.isbn CURRENCY BOUND 5 MIN ON (s, t)"
        )
        constraint, operands = normalized(sql)
        assert operands == {"s", "b", "r"}
        assert len(constraint) == 1
        t = constraint.tuples[0]
        assert t.bound == 300.0
        assert t.operands == frozenset({"s", "b", "r"})

    def test_paper_q3_subquery_joins_outer_class(self):
        # Figure 2.2 Q3: the WHERE-subquery's clause places s in b's class;
        # since the outer clause has (b, r) together, all three merge.
        sql = (
            "SELECT b.isbn FROM books b, reviews r "
            "WHERE b.isbn = r.isbn AND EXISTS ("
            "SELECT s.sale_id FROM sales s WHERE s.isbn = b.isbn "
            "CURRENCY BOUND 10 MIN ON (s, b)) "
            "CURRENCY BOUND 10 MIN ON (b, r)"
        )
        constraint, operands = normalized(sql)
        assert operands == {"b", "r", "s"}
        assert len(constraint) == 1
        assert constraint.tuples[0].operands == frozenset({"b", "r", "s"})

    def test_q3_variant_subquery_independent(self):
        sql = (
            "SELECT b.isbn FROM books b, reviews r "
            "WHERE b.isbn = r.isbn AND EXISTS ("
            "SELECT s.sale_id FROM sales s WHERE s.isbn = b.isbn "
            "CURRENCY BOUND 10 MIN ON (s)) "
            "CURRENCY BOUND 10 MIN ON (b, r)"
        )
        constraint, _ = normalized(sql)
        assert constraint.class_of("s") == frozenset({"s"})
        assert constraint.class_of("b") == frozenset({"b", "r"})

    def test_clause_referencing_unknown_alias_raises(self):
        with pytest.raises(ConsistencyError):
            normalized(JOIN + " CURRENCY BOUND 5 SEC ON (zzz)")

    def test_duplicate_alias_raises(self):
        with pytest.raises(ConsistencyError):
            normalized("SELECT 1 x FROM t, t CURRENCY BOUND 5 SEC ON (t)")


class TestNormalizationAlgebra:
    def test_merge_takes_min_bound(self):
        raw = CCConstraint([CCTuple(10.0, ["a", "b"]), CCTuple(5.0, ["b", "c"])])
        result = raw.normalize()
        assert len(result) == 1
        assert result.tuples[0].bound == 5.0
        assert result.tuples[0].operands == frozenset({"a", "b", "c"})

    def test_disjoint_tuples_untouched(self):
        raw = CCConstraint([CCTuple(10.0, ["a"]), CCTuple(5.0, ["b"])])
        result = raw.normalize()
        assert len(result) == 2

    def test_transitive_merge(self):
        raw = CCConstraint(
            [CCTuple(10.0, ["a", "b"]), CCTuple(20.0, ["c", "d"]), CCTuple(30.0, ["b", "c"])]
        )
        result = raw.normalize()
        assert len(result) == 1
        assert result.tuples[0].bound == 10.0

    def test_expansion_of_views(self):
        raw = CCConstraint([CCTuple(5.0, ["v"])])
        result = raw.normalize(expansion={"v": {"x", "y"}})
        assert result.tuples[0].operands == frozenset({"x", "y"})

    def test_nested_expansion(self):
        raw = CCConstraint([CCTuple(5.0, ["v"])])
        result = raw.normalize(expansion={"v": {"w", "x"}, "w": {"y"}})
        assert result.tuples[0].operands == frozenset({"x", "y"})

    def test_cyclic_expansion_raises(self):
        raw = CCConstraint([CCTuple(5.0, ["v"])])
        with pytest.raises(ConsistencyError):
            raw.normalize(expansion={"v": {"w"}, "w": {"v"}})

    def test_union(self):
        a = CCConstraint([CCTuple(5.0, ["a"])])
        b = CCConstraint([CCTuple(6.0, ["b"])])
        assert len(a.union(b)) == 2

    def test_is_normalized(self):
        assert CCConstraint([CCTuple(1.0, ["a"]), CCTuple(2.0, ["b"])]).is_normalized()
        assert not CCConstraint(
            [CCTuple(1.0, ["a", "b"]), CCTuple(2.0, ["b"])]
        ).is_normalized()

    def test_default_constructor(self):
        c = CCConstraint.default(["a", "b"])
        assert c.tuples[0].bound == 0.0
        assert c.tuples[0].operands == frozenset({"a", "b"})

    def test_default_empty(self):
        assert len(CCConstraint.default([])) == 0


@st.composite
def raw_constraints(draw):
    operand_pool = ["a", "b", "c", "d", "e", "f"]
    n = draw(st.integers(min_value=1, max_value=5))
    tuples = []
    for _ in range(n):
        size = draw(st.integers(min_value=1, max_value=3))
        operands = draw(
            st.lists(st.sampled_from(operand_pool), min_size=size, max_size=size, unique=True)
        )
        bound = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
        tuples.append(CCTuple(bound, operands))
    return CCConstraint(tuples)


class TestNormalizationProperties:
    @settings(max_examples=100)
    @given(raw_constraints())
    def test_normalize_yields_disjoint_tuples(self, raw):
        assert raw.normalize().is_normalized()

    @settings(max_examples=100)
    @given(raw_constraints())
    def test_normalize_preserves_operands(self, raw):
        assert raw.normalize().operands == raw.operands

    @settings(max_examples=100)
    @given(raw_constraints())
    def test_normalize_idempotent(self, raw):
        once = raw.normalize()
        twice = once.normalize()
        assert once == twice

    @settings(max_examples=100)
    @given(raw_constraints())
    def test_bounds_never_increase(self, raw):
        result = raw.normalize()
        for t in raw.tuples:
            for operand in t.operands:
                assert result.bound_for(operand) <= t.bound

    @settings(max_examples=100)
    @given(raw_constraints())
    def test_merged_bound_is_min_of_members(self, raw):
        result = raw.normalize()
        for t in result.tuples:
            touching = [
                r.bound for r in raw.tuples if r.operands & t.operands
            ]
            assert t.bound == min(touching)
