"""Tests for the session-aware write path: read-your-writes tokens,
per-table strictness, DML routing with statistics invalidation, token
portability across fleet nodes / crashes / shards, and the seeded
double-entry ledger workload with its chaos invariants."""

import pytest

from repro import (
    BackendServer,
    FleetConfig,
    MTCache,
    Session,
    SessionToken,
)
from repro.chaos import ChaosScheduler, InvariantChecker, build_ledger_fleet
from repro.common.backend import stable_shard_hash
from repro.workloads import LedgerWorkload

LEDGER_DDL = (
    "CREATE TABLE ledger (tid INT NOT NULL, leg INT NOT NULL, "
    "account INT NOT NULL, delta INT NOT NULL, PRIMARY KEY (tid, leg))"
)
READ_TID2 = (
    "SELECT l.tid, l.leg, l.account, l.delta FROM ledger l "
    "WHERE l.tid = 2 CURRENCY BOUND 600 SEC ON (l)"
)
TRANSFER_TID2 = "INSERT INTO ledger VALUES (2, 0, 3, 10), (2, 1, 4, -10)"


def make_cache():
    backend = BackendServer()
    backend.create_table(LEDGER_DDL)
    backend.execute("INSERT INTO ledger VALUES (1, 0, 1, 50), (1, 1, 2, -50)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
    cache.create_matview("ledger_copy", "ledger",
                         ["tid", "leg", "account", "delta"], region="r")
    cache.declare_table_consistency("ledger", "strict")
    cache.run_for(3.0)
    return cache


def make_ledger_fleet(partitions=1, nodes=3):
    fleet = FleetConfig(nodes=nodes, partitions=partitions).build()
    backend = fleet.backend
    backend.create_table(LEDGER_DDL)
    backend.execute("INSERT INTO ledger VALUES (1, 0, 1, 50), (1, 1, 2, -50)")
    backend.refresh_statistics()
    fleet.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
    fleet.create_matview("ledger_copy", "ledger",
                         ["tid", "leg", "account", "delta"], region="r")
    fleet.declare_table_consistency("ledger", "strict")
    fleet.run_for(3.0)
    return fleet


# ----------------------------------------------------------------------
# Tokens and sessions
# ----------------------------------------------------------------------
class TestSessionToken:
    def test_empty_token_is_falsy(self):
        assert not SessionToken()
        assert SessionToken({"backend": 3})

    def test_merge_is_pointwise_max(self):
        a = SessionToken({"p0": 5, "p1": 2})
        b = SessionToken({"p1": 7, "p2": 1})
        merged = a.merge(b)
        assert merged.floors == {"p0": 5, "p1": 7, "p2": 1}
        # inputs untouched
        assert a.floors == {"p0": 5, "p1": 2}
        assert b.floors == {"p1": 7, "p2": 1}

    def test_dict_round_trip(self):
        token = SessionToken({"backend": 9})
        assert SessionToken.from_dict(token.as_dict()) == token
        assert SessionToken.from_dict(None) == SessionToken()

    def test_session_from_token_accepts_dict_and_token(self):
        for raw in ({"p0": 4}, SessionToken({"p0": 4})):
            session = Session.from_token(raw, name="resumed")
            assert session.floors == {"p0": 4}
            assert session.name == "resumed"

    def test_observe_commit_is_monotonic(self):
        session = Session("w")
        session.observe_commit([("backend", 5)])
        session.observe_commit([("backend", 3)])  # replay/laggard: ignored
        assert session.floors == {"backend": 5}
        assert session.writes == 2

    def test_observe_token_merges(self):
        session = Session.from_token({"p0": 4})
        session.observe_token({"p0": 2, "p1": 9})
        assert session.floors == {"p0": 4, "p1": 9}

    def test_floor_for_defaults_to_zero(self):
        assert Session("w").floor_for("backend") == 0

    def test_token_property_is_a_snapshot(self):
        session = Session("w")
        session.observe_commit([("backend", 1)])
        token = session.token
        session.observe_commit([("backend", 8)])
        assert token.floors == {"backend": 1}
        assert session.token.floors == {"backend": 8}


# ----------------------------------------------------------------------
# Single-cache read-your-writes
# ----------------------------------------------------------------------
class TestReadYourWrites:
    def test_dml_stamps_the_session_floor(self):
        cache = make_cache()
        session = Session("writer")
        rowcount = cache.execute(TRANSFER_TID2, session=session)
        assert rowcount == 2
        assert session.floors == {"backend": cache.agents["r"].log.records[-1].txn_id}
        assert session.writes == 1

    def test_lagging_replica_forces_remote_then_local(self):
        cache = make_cache()
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        result = cache.execute(READ_TID2, session=session)
        assert len(result.rows) == 2
        assert result.routing == "remote"
        assert ("ledger_copy", "remote", "backend") in result.context.session_decisions
        cache.run_for(3.0)
        result = cache.execute(READ_TID2, session=session)
        assert len(result.rows) == 2
        assert result.routing == "local"
        assert ("ledger_copy", "local", None) in result.context.session_decisions

    def test_sessionless_read_is_untouched(self):
        cache = make_cache()
        cache.execute(TRANSFER_TID2, session=Session("writer"))
        result = cache.execute(READ_TID2)  # 600 s bound: stale local is fine
        assert result.routing == "local"
        assert not result.context.session_decisions

    def test_guard_outcome_metrics(self):
        cache = make_cache()
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        cache.execute(READ_TID2, session=session)
        cache.run_for(3.0)
        cache.execute(READ_TID2, session=session)
        snapshot = cache.metrics.snapshot()
        assert snapshot['session_guard_total{outcome="remote",view="ledger_copy"}'] == 1
        assert snapshot['session_guard_total{outcome="local",view="ledger_copy"}'] == 1
        assert snapshot["dml_forwarded_total"] == 1

    def test_explain_analyze_shows_the_session_decision(self):
        cache = make_cache()
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        lines = [row[0] for row in
                 cache.explain(READ_TID2, analyze=True, session=session).rows]
        assert any("session guard: ledger_copy -> remote" in line
                   and "lags the session floor" in line for line in lines)
        cache.run_for(3.0)
        lines = [row[0] for row in
                 cache.explain(READ_TID2, analyze=True, session=session).rows]
        assert any("session guard: ledger_copy -> local" in line
                   for line in lines)


# ----------------------------------------------------------------------
# Per-table strictness
# ----------------------------------------------------------------------
class TestTableConsistency:
    UNBOUNDED_READ = (
        "SELECT l.tid FROM ledger l WHERE l.tid = 2 "
        "CURRENCY BOUND UNBOUNDED ON (l)"
    )

    def test_strict_guards_even_unbounded(self):
        cache = make_cache()
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        result = cache.execute(self.UNBOUNDED_READ, session=session)
        assert result.plan.summary() == "guarded(ledger_copy)"
        assert result.routing == "remote"
        cache.run_for(3.0)
        assert cache.execute(self.UNBOUNDED_READ, session=session).routing == "local"

    def test_relaxed_unbounded_skips_the_guard(self):
        cache = make_cache()
        cache.declare_table_consistency("ledger", "relaxed")
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        result = cache.execute(self.UNBOUNDED_READ, session=session)
        assert result.plan.summary() == "scan(ledger_copy)"
        assert result.routing == "local"

    def test_declaration_validates_mode(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.declare_table_consistency("ledger", "eventual")

    def test_declaration_invalidates_cached_plans(self):
        cache = make_cache()
        first = cache.optimize(self.UNBOUNDED_READ)
        cache.declare_table_consistency("ledger", "relaxed")
        second = cache.optimize(self.UNBOUNDED_READ)
        assert second is not first
        assert second.summary() == "scan(ledger_copy)"
        assert cache.plan_cache_stats["invalidations"] >= 1

    def test_default_is_relaxed(self):
        cache = make_cache()
        assert cache.table_consistency("accounts") == "relaxed"
        assert cache.table_consistency("ledger") == "strict"


# ----------------------------------------------------------------------
# Satellite: DML invalidates what it stales
# ----------------------------------------------------------------------
class TestDmlInvalidation:
    def test_small_dml_leaves_plans_alone(self):
        cache = make_cache()
        first = cache.optimize(READ_TID2)
        cache.execute("INSERT INTO ledger VALUES (5, 0, 1, 7), (5, 1, 2, -7)")
        assert cache.optimize(READ_TID2) is first
        assert "auto_stats_refresh_total" not in str(cache.metrics.snapshot())

    def test_bulk_dml_refreshes_stats_and_bumps_the_epoch(self):
        cache = make_cache()
        first = cache.optimize(READ_TID2)
        epoch = cache.backend.ddl_epoch
        values = ", ".join(f"({100 + i}, 0, 1, 1)" for i in range(200))
        cache.execute(f"INSERT INTO ledger VALUES {values}")
        snapshot = cache.metrics.snapshot()
        assert snapshot['auto_stats_refresh_total{table="ledger"}'] == 1
        assert cache.backend.ddl_epoch > epoch
        assert cache.optimize(READ_TID2) is not first
        # the refreshed shadow stats see the churn
        assert cache.catalog.table("ledger").stats.row_count >= 202

    def test_mutation_counter_accumulates_across_statements(self):
        cache = make_cache()
        for i in range(100):
            cache.execute(f"INSERT INTO ledger VALUES ({200 + i}, 0, 1, 1), "
                          f"({200 + i}, 1, 2, -1)")
        snapshot = cache.metrics.snapshot()
        assert snapshot['auto_stats_refresh_total{table="ledger"}'] == 1


# ----------------------------------------------------------------------
# Replication regression: multi-record transactions
# ----------------------------------------------------------------------
class TestAtomicTransferReplication:
    def test_agent_applies_every_record_of_one_txn(self):
        # Both legs of a transfer share one transaction id; the agent
        # must not advance its cutoff mid-transaction and skip the
        # second record.
        cache = make_cache()
        cache.execute(TRANSFER_TID2)
        cache.run_for(3.0)
        view = cache.catalog.matview("ledger_copy")
        rows = [values for _, values in view.table.scan()]
        assert len([r for r in rows if r[0] == 2]) == 2


# ----------------------------------------------------------------------
# Satellite: token portability (fleet, crash/restart, shards)
# ----------------------------------------------------------------------
class TestTokenPortability:
    def test_floor_honored_on_every_fleet_node(self):
        fleet = make_ledger_fleet()
        session = Session("writer")
        fleet.execute(TRANSFER_TID2, session=session)
        for _ in range(3):  # round-robin visits each node
            result = fleet.execute(READ_TID2, session=session)
            assert len(result.rows) == 2
            assert result.routing == "remote"
        fleet.run_for(3.0)
        for _ in range(3):
            result = fleet.execute(READ_TID2, session=session)
            assert len(result.rows) == 2
            assert result.routing == "local"

    def test_token_survives_crash_and_restart(self):
        fleet = make_ledger_fleet()
        session = Session("writer")
        fleet.execute(TRANSFER_TID2, session=session)
        token = session.token.as_dict()  # "persisted" client-side
        fleet.node("node0").crash()
        resumed = Session.from_token(token, name="resumed")
        result = fleet.execute(READ_TID2, session=resumed)
        assert len(result.rows) == 2 and result.routing == "remote"
        fleet.node("node0").restart()
        fleet.run_for(6.0)
        # the restarted node rebuilt its views past the floor
        result = fleet.node("node0").execute(READ_TID2, session=resumed)
        assert len(result.rows) == 2 and result.routing == "local"

    def test_floor_is_scoped_to_the_written_shard(self):
        fleet = make_ledger_fleet(partitions=2)
        session = Session("writer")
        fleet.execute(TRANSFER_TID2, session=session)
        written = stable_shard_hash(2) % 2
        assert set(session.floors) == {f"p{written}"}
        # a strict read pinned to the *other* shard has no floor to
        # honor — the session does not force it remote
        other_tid = next(t for t in range(3, 100)
                         if stable_shard_hash(t) % 2 != written)
        other = fleet.execute(
            f"SELECT l.tid, l.leg FROM ledger l WHERE l.tid = {other_tid} "
            f"CURRENCY BOUND 600 SEC ON (l)", session=session)
        assert other.routing == "local"
        # while the written shard still bounces to the back-end
        assert fleet.execute(READ_TID2, session=session).routing == "remote"

    def test_merged_tokens_keep_both_guarantees(self):
        fleet = make_ledger_fleet(partitions=2)
        a, b = Session("a"), Session("b")
        fleet.execute(TRANSFER_TID2, session=a)
        tid_other = next(t for t in range(3, 100)
                         if stable_shard_hash(t) % 2 != stable_shard_hash(2) % 2)
        fleet.execute(f"INSERT INTO ledger VALUES ({tid_other}, 0, 5, 3), "
                      f"({tid_other}, 1, 6, -3)", session=b)
        merged = Session.from_token(a.token.merge(b.token), name="merged")
        assert set(merged.floors) == {"p0", "p1"}
        assert fleet.execute(READ_TID2, session=merged).routing == "remote"


# ----------------------------------------------------------------------
# The ledger workload and its chaos invariants
# ----------------------------------------------------------------------
class TestLedgerWorkload:
    def test_install_declares_strict_ledger(self):
        fleet = FleetConfig(nodes=2).build()
        workload = LedgerWorkload(fleet, n_accounts=16).install()
        fleet.run_for(3.0)
        for node in fleet.nodes:
            assert node.table_consistency("ledger") == "strict"
            assert node.table_consistency("accounts") == "relaxed"
        assert workload.session.name == "ledger-writer"

    def test_quiet_drive_is_clean_and_deterministic(self):
        def run():
            fleet = FleetConfig(nodes=2).build()
            workload = LedgerWorkload(fleet, n_accounts=16, seed=5,
                                      write_rate=0.3).install()
            fleet.run_for(3.0)
            checker = InvariantChecker(fleet)
            workload.drive(10.0, checker=checker, raise_errors=True)
            workload.audit(checker)
            return workload.summary(), checker

        summary, checker = run()
        assert summary["writes"] > 0 and summary["reads"] > 0
        assert summary["write_errors"] == 0
        assert checker.violations == []
        assert checker.ryw_checked == checker.ryw_satisfied > 0
        assert summary == run()[0]

    def test_conservation_audit_catches_a_torn_transfer(self):
        fleet = FleetConfig(nodes=2).build()
        workload = LedgerWorkload(fleet, n_accounts=16).install()
        fleet.run_for(3.0)
        fleet.backend.execute("INSERT INTO ledger VALUES (900, 0, 1, 33)")
        checker = InvariantChecker(fleet)
        checker.check_ledger_conservation(table="ledger")
        assert any(v.invariant == "balance_conservation"
                   for v in checker.violations)

    def test_seeded_ledger_chaos_is_clean_and_deterministic(self):
        def run():
            fleet, workload = build_ledger_fleet(n_nodes=3)
            chaos = ChaosScheduler(fleet, seed=23)
            chaos.random_schedule(20.0)
            report = chaos.run(20.0, workload=workload)
            return report

        report = run()
        assert report.violations == []
        summary = report.summary()
        ryw = summary["read_your_writes"]
        assert ryw["checked"] == ryw["satisfied"] + ryw["excused_degraded"]
        assert summary["workload"]["write_errors"] + \
            summary["workload"]["writes"] == summary["workload"]["transfers_committed"] + \
            summary["workload"]["write_errors"]
        assert summary == run().summary()

    def test_sharded_ledger_chaos_is_clean(self):
        fleet, workload = build_ledger_fleet(n_nodes=3, partitions=2)
        chaos = ChaosScheduler(fleet, seed=31)
        chaos.random_schedule(20.0)
        report = chaos.run(20.0, workload=workload)
        assert report.violations == []
        assert report.summary()["read_your_writes"]["checked"] > 0
