"""Tests for qualifier-insensitive expression comparison and AST helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import ast
from repro.sql.compare import equal_ignoring_qualifiers
from repro.sql.parser import parse_expression


def eq(a, b):
    return equal_ignoring_qualifiers(parse_expression(a), parse_expression(b))


class TestEqualIgnoringQualifiers:
    def test_identical(self):
        assert eq("a < 5", "a < 5")

    def test_qualifier_ignored(self):
        assert eq("c.c_acctbal < 500", "c_acctbal < 500")
        assert eq("x.a = y.b", "a = b")

    def test_different_columns(self):
        assert not eq("a < 5", "b < 5")

    def test_different_ops(self):
        assert not eq("a < 5", "a <= 5")

    def test_different_literals(self):
        assert not eq("a < 5", "a < 6")
        assert not eq("a = 'x'", "a = 'y'")

    def test_different_shapes(self):
        assert not eq("a < 5", "a BETWEEN 1 AND 5")

    def test_between(self):
        assert eq("t.a BETWEEN 1 AND 5", "a BETWEEN 1 AND 5")
        assert not eq("a BETWEEN 1 AND 5", "a BETWEEN 1 AND 6")

    def test_negation_matters(self):
        assert not eq("a BETWEEN 1 AND 5", "a NOT BETWEEN 1 AND 5")
        assert not eq("a IS NULL", "a IS NOT NULL")

    def test_in_list(self):
        assert eq("t.a IN (1, 2)", "a IN (1, 2)")
        assert not eq("a IN (1, 2)", "a IN (1, 2, 3)")

    def test_boolean_structure(self):
        assert eq("t.a = 1 AND t.b = 2", "a = 1 AND b = 2")
        assert not eq("a = 1 AND b = 2", "a = 1 OR b = 2")

    def test_none_handling(self):
        assert equal_ignoring_qualifiers(None, None)
        assert not equal_ignoring_qualifiers(None, parse_expression("a = 1"))

    @settings(max_examples=50)
    @given(st.sampled_from([
        "a < 5", "a = 'x'", "a BETWEEN 1 AND 9", "NOT a = 1",
        "a IN (1, 2, 3)", "a IS NULL", "a + b * 2 > 7",
    ]))
    def test_reflexive(self, text):
        expr = parse_expression(text)
        assert equal_ignoring_qualifiers(expr, expr)


class TestAstHelpers:
    def test_walk_visits_all(self):
        expr = parse_expression("a + b < c AND d = 1")
        names = {n.name for n in expr.walk() if isinstance(n, ast.ColumnRef)}
        assert names == {"a", "b", "c", "d"}

    def test_column_refs(self):
        expr = parse_expression("t.a BETWEEN u.b AND 5")
        refs = expr.column_refs()
        assert {(r.qualifier, r.name) for r in refs} == {("t", "a"), ("u", "b")}

    def test_literal_to_sql_escaping(self):
        assert ast.Literal("it's").to_sql() == "'it''s'"
        assert ast.Literal(None).to_sql() == "NULL"
        assert ast.Literal(True).to_sql() == "TRUE"

    def test_select_item_output_name(self):
        item = ast.SelectItem(ast.ColumnRef("a", qualifier="t"))
        assert item.output_name() == "a"
        aliased = ast.SelectItem(ast.ColumnRef("a"), alias="x")
        assert aliased.output_name() == "x"

    def test_expr_equality_and_hash(self):
        a = parse_expression("x < 5")
        b = parse_expression("x < 5")
        assert a == b
        assert hash(a) == hash(b)

    def test_currency_spec_to_sql(self):
        spec = ast.CurrencySpec(600.0, ["b", "r"])
        assert spec.to_sql() == "600 SEC ON (b, r)"
        unbounded = ast.CurrencySpec(ast.UNBOUNDED, ["b"])
        assert "UNBOUNDED" in unbounded.to_sql()

    def test_currency_spec_rejects_negative(self):
        from repro.common.errors import ParseError

        with pytest.raises(ParseError):
            ast.CurrencySpec(-1.0, ["b"])


# ----------------------------------------------------------------------
# Hypothesis: random expression trees round-trip through to_sql + parse.
# ----------------------------------------------------------------------
_literals = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False).map(
        lambda f: round(f, 3)
    ),
    st.sampled_from(["alpha", "it's", ""]),
    st.none(),
    st.booleans(),
)

_columns = st.sampled_from(
    [ast.ColumnRef("a"), ast.ColumnRef("b", qualifier="t"), ast.ColumnRef("c", qualifier="u")]
)


def _expressions(depth):
    if depth <= 0:
        return st.one_of(_literals.map(ast.Literal), _columns)
    sub = _expressions(depth - 1)
    return st.one_of(
        _literals.map(ast.Literal),
        _columns,
        st.tuples(st.sampled_from(["+", "-", "*", "<", "<=", "=", "<>", "and", "or"]), sub, sub).map(
            lambda t: ast.BinaryOp(*t)
        ),
        sub.map(lambda e: ast.UnaryOp("not", e)),
        st.tuples(sub, sub, sub).map(lambda t: ast.Between(*t)),
        st.tuples(sub, st.lists(sub, min_size=1, max_size=3)).map(
            lambda t: ast.InList(t[0], t[1])
        ),
        sub.map(lambda e: ast.IsNull(e)),
    )


class TestParserRoundTripProperty:
    @settings(max_examples=150, deadline=None)
    @given(_expressions(3))
    def test_to_sql_parses_back_equal(self, expr):
        text = expr.to_sql()
        reparsed = parse_expression(text)
        # to_sql is fully parenthesized, so the reparse must be exact.
        assert reparsed.to_sql() == text
