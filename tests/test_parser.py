"""Tests for the SQL parser, especially the new CURRENCY clause."""

import pytest

from repro.common.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestSelectBasics:
    def test_minimal_select(self):
        stmt = parse("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expr == ast.ColumnRef("a")
        assert stmt.from_items[0].name == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].star

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].star
        assert stmt.items[0].star_qualifier == "t"

    def test_alias_with_as(self):
        stmt = parse("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse("SELECT c.a FROM customers c")
        assert stmt.from_items[0].alias == "c"

    def test_multiple_tables(self):
        stmt = parse("SELECT a FROM t1, t2 u")
        assert [f.alias for f in stmt.from_items] == ["t1", "u"]

    def test_join_on_normalized_into_where(self):
        stmt = parse("SELECT a FROM t1 JOIN t2 ON t1.x = t2.y WHERE t1.z > 3")
        # Both the WHERE and the ON condition end up conjoined.
        sql = stmt.where.to_sql()
        assert "t1.x = t2.y" in sql
        assert "t1.z > 3" in sql

    def test_left_join_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t1 LEFT JOIN t2 ON t1.x = t2.y")

    def test_where(self):
        stmt = parse("SELECT a FROM t WHERE a < 5 AND b = 'x'")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "and"

    def test_group_by_having(self):
        stmt = parse("SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING n > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 1.5")

    def test_derived_table(self):
        stmt = parse("SELECT x FROM (SELECT a AS x FROM t) d")
        sub = stmt.from_items[0]
        assert isinstance(sub, ast.FromSubquery)
        assert sub.alias == "d"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t garbage extra ,")


class TestCurrencyClause:
    def test_single_spec(self):
        stmt = parse("SELECT a FROM b, r WHERE b.k = r.k CURRENCY BOUND 10 MIN ON (b, r)")
        clause = stmt.currency
        assert len(clause.specs) == 1
        spec = clause.specs[0]
        assert spec.bound == 600.0
        assert spec.targets == ["b", "r"]

    def test_multiple_specs(self):
        stmt = parse(
            "SELECT a FROM b, r CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)"
        )
        bounds = [s.bound for s in stmt.currency.specs]
        assert bounds == [600.0, 1800.0]

    def test_by_columns(self):
        stmt = parse(
            "SELECT a FROM b, r CURRENCY BOUND 10 MIN ON (b) BY b.isbn, 30 MIN ON (r) BY r.isbn"
        )
        spec = stmt.currency.specs[0]
        assert spec.by_columns == [ast.ColumnRef("isbn", qualifier="b")]

    def test_bare_number_is_seconds(self):
        stmt = parse("SELECT a FROM t CURRENCY BOUND 45 ON (t)")
        assert stmt.currency.specs[0].bound == 45.0

    def test_all_units(self):
        cases = [("500 MS", 0.5), ("10 SEC", 10.0), ("2 MINUTES", 120.0),
                 ("1 HOUR", 3600.0), ("1 DAY", 86400.0)]
        for text, seconds in cases:
            stmt = parse(f"SELECT a FROM t CURRENCY BOUND {text} ON (t)")
            assert stmt.currency.specs[0].bound == seconds, text

    def test_unbounded(self):
        stmt = parse("SELECT a FROM t CURRENCY BOUND UNBOUNDED ON (t)")
        assert stmt.currency.specs[0].bound == ast.UNBOUNDED

    def test_currency_clause_in_subquery(self):
        stmt = parse(
            "SELECT a FROM (SELECT a FROM t CURRENCY BOUND 10 SEC ON (t)) d "
            "CURRENCY BOUND 5 SEC ON (d)"
        )
        assert stmt.currency.specs[0].targets == ["d"]
        inner = stmt.from_items[0].select
        assert inner.currency.specs[0].targets == ["t"]

    def test_missing_on_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t CURRENCY BOUND 10 MIN (t)")

    def test_negative_bound_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t CURRENCY BOUND -5 ON (t)")

    def test_clause_must_be_last(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t CURRENCY BOUND 5 ON (t) WHERE a > 1")


class TestExpressions:
    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = parse_expression("a NOT BETWEEN 1 AND 5")
        assert expr.negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_is_null(self):
        expr = parse_expression("a IS NULL")
        assert isinstance(expr, ast.IsNull)
        assert not expr.negated

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert expr.negated

    def test_exists_subquery(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM s WHERE s.k = 3)")
        assert isinstance(expr, ast.ExistsSubquery)

    def test_in_subquery(self):
        expr = parse_expression("a IN (SELECT k FROM s)")
        assert isinstance(expr, ast.InSubquery)

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr.star
        assert expr.is_aggregate

    def test_min_aggregate_despite_unit_keyword(self):
        expr = parse_expression("MIN(a)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "min"

    def test_getdate(self):
        expr = parse_expression("GETDATE()")
        assert expr.name == "getdate"

    def test_unary_minus(self):
        expr = parse_expression("-a")
        assert isinstance(expr, ast.UnaryOp)

    def test_neq_normalized(self):
        expr = parse_expression("a != 1")
        assert expr.op == "<>"

    def test_qualified_column(self):
        expr = parse_expression("t.a")
        assert expr.qualifier == "t"


class TestDML:
    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns is None

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert stmt.assignments[0][0] == "a"
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a > 5")
        assert stmt.table == "t"

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INT NOT NULL, name VARCHAR(25), PRIMARY KEY (id))"
        )
        assert stmt.name == "t"
        assert stmt.primary_key == ["id"]
        assert not stmt.columns[0].nullable
        assert stmt.columns[1].nullable

    def test_create_index(self):
        stmt = parse("CREATE INDEX ix ON t (a, b)")
        assert stmt.columns == ["a", "b"]
        assert not stmt.unique

    def test_create_unique_clustered_index(self):
        stmt = parse("CREATE UNIQUE CLUSTERED INDEX ix ON t (a)")
        assert stmt.unique
        assert stmt.clustered


class TestTimeordered:
    def test_begin(self):
        assert isinstance(parse("BEGIN TIMEORDERED"), ast.BeginTimeordered)

    def test_end(self):
        assert isinstance(parse("END TIMEORDERED"), ast.EndTimeordered)


class TestRoundTrip:
    CASES = [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b AS x FROM t u WHERE ((a < 5) AND (b = 'y'))",
        "SELECT a FROM t GROUP BY a HAVING (n > 2) ORDER BY a DESC LIMIT 3",
        "SELECT a FROM b, r WHERE (b.k = r.k) CURRENCY BOUND 600 SEC ON (b, r)",
        "SELECT a FROM t CURRENCY BOUND 10 SEC ON (t) BY t.k",
        "INSERT INTO t (a) VALUES (1), (2)",
        "UPDATE t SET a = (a + 1) WHERE (id = 3)",
        "DELETE FROM t WHERE (a > 5)",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_to_sql_reparses_to_same(self, sql):
        first = parse(sql)
        second = parse(first.to_sql())
        assert second.to_sql() == first.to_sql()
