"""Tests for crash recovery, agent failover, and the chaos harness:
node lifecycle (crash / restart / drain / warm-up), lifecycle-aware
routing, partitions, supervisor-driven standby promotion, the C&C
invariant checkers, and the seeded end-to-end determinism acceptance."""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.chaos import (
    ChaosScheduler,
    InvariantChecker,
    build_demo_fleet,
    default_point_lookup_factory,
)
from repro.cli import Shell
from repro.common.errors import FleetStateError, InvariantViolation
from repro.fleet import CacheFleet, NodeLifecycle

LOOSE = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
STRICT = "SELECT t.id, t.v FROM t CURRENCY BOUND 2 SEC ON (t)"


def make_backend(rows=20):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    values = ", ".join(f"({i}, {i * 10})" for i in range(1, rows + 1))
    backend.execute(f"INSERT INTO t VALUES {values}")
    backend.refresh_statistics()
    return backend


def make_fleet(n_nodes=3, settle=True, **kwargs):
    fleet = CacheFleet(make_backend(), n_nodes=n_nodes, **kwargs)
    fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    fleet.create_matview("t_copy", "t", ["id", "v"], region="r")
    if settle:
        fleet.run_for(6.0)
    return fleet


# ----------------------------------------------------------------------
# Node lifecycle
# ----------------------------------------------------------------------
class TestCrash:
    def test_crash_loses_in_memory_state(self):
        fleet = make_fleet()
        node = fleet.node("node0")
        node.execute(LOOSE)  # warm the plan cache and query log
        assert node.catalog.matview("t_copy").table.row_count == 20
        node.crash()
        assert node.lifecycle is NodeLifecycle.CRASHED
        view = node.catalog.matview("t_copy")
        assert view.table.row_count == 0
        assert view.applied_txn == 0
        for heartbeat in node._local_heartbeats.values():
            assert heartbeat.row_count == 0
        assert len(node._plan_cache) == 0
        assert node.query_log.recent(5) == []

    def test_crash_twice_rejected(self):
        fleet = make_fleet()
        fleet.crash_node("node0")
        with pytest.raises(FleetStateError, match="already crashed"):
            fleet.crash_node("node0")

    def test_router_skips_crashed_node(self):
        fleet = make_fleet()
        fleet.crash_node("node0")
        served = {fleet.execute(LOOSE).node for _ in range(6)}
        assert served == {"node1", "node2"}

    def test_all_nodes_down_fails_fast(self):
        fleet = make_fleet()
        for name in ("node0", "node1", "node2"):
            fleet.crash_node(name)
        with pytest.raises(FleetStateError, match="no fleet node accepting"):
            fleet.execute(LOOSE)

    def test_crash_emits_lifecycle_event_and_counter(self):
        fleet = make_fleet()
        fleet.crash_node("node1")
        (event,) = fleet.metrics.events.recent(5, kind="lifecycle")
        assert event.severity == "error"
        assert event.attrs["node"] == "node1"
        assert event.attrs["state"] == "crashed"
        snap = fleet.metrics.snapshot()
        assert snap['fleet_node_lifecycle_total{node="node1",state="crashed"}'] == 1


class TestRestart:
    def test_restart_rebuilds_views_and_warms_up(self):
        fleet = make_fleet(warmup_seconds=2.0)
        node = fleet.node("node0")
        node.crash()
        fleet.backend.execute("INSERT INTO t VALUES (21, 210)")
        assert node.restart() is True
        assert node.lifecycle is NodeLifecycle.WARMING
        # Cold rebuild re-subscribed the view from the current back-end.
        assert node.catalog.matview("t_copy").table.row_count == 21
        # While warming, fully-UP peers take the traffic.
        served = {fleet.execute(LOOSE).node for _ in range(6)}
        assert "node0" not in served
        fleet.run_for(2.5)
        assert node.lifecycle is NodeLifecycle.UP
        served = {fleet.execute(LOOSE).node for _ in range(6)}
        assert "node0" in served

    def test_restarted_node_serves_locally_again(self):
        fleet = make_fleet()
        node = fleet.node("node2")
        node.crash()
        node.restart()
        fleet.run_for(6.0)  # warm-up + heartbeat cadence
        result = node.execute(LOOSE)
        assert result.routing == "local"
        assert len(result.rows) == 20

    def test_restart_requires_crashed(self):
        fleet = make_fleet()
        with pytest.raises(FleetStateError, match="not crashed"):
            fleet.restart_node("node0")

    def test_restart_deferred_during_outage(self):
        fleet = make_fleet(warmup_seconds=1.0)
        node = fleet.node("node0")
        node.crash()
        fleet.network.inject_outage(5.0)
        assert node.restart() is False
        assert node.lifecycle is NodeLifecycle.CRASHED
        # The deferred restart fires just after the outage window ends.
        fleet.run_for(5.1)
        assert node.lifecycle is NodeLifecycle.WARMING
        fleet.run_for(1.5)
        assert node.lifecycle is NodeLifecycle.UP

    def test_restart_deferred_by_partition_of_that_node(self):
        fleet = make_fleet(warmup_seconds=1.0)
        node = fleet.node("node1")
        node.crash()
        fleet.network.partition("node1", 4.0)
        assert node.restart() is False
        fleet.run_for(6.0)
        assert node.lifecycle is NodeLifecycle.UP

    def test_warming_node_serves_when_nothing_else_up(self):
        fleet = make_fleet(n_nodes=1, warmup_seconds=5.0)
        node = fleet.node("node0")
        node.crash()
        node.restart()
        assert node.lifecycle is NodeLifecycle.WARMING
        result = fleet.execute(LOOSE)
        assert result.node == "node0"


class TestDrain:
    def test_drain_removes_from_rotation_and_resume_restores(self):
        fleet = make_fleet()
        fleet.drain_node("node1")
        assert fleet.node("node1").lifecycle is NodeLifecycle.DRAINING
        served = {fleet.execute(LOOSE).node for _ in range(6)}
        assert served == {"node0", "node2"}
        # Drained caches stay warm: the views were not truncated.
        assert fleet.node("node1").catalog.matview("t_copy").table.row_count == 20
        fleet.resume_node("node1")
        served = {fleet.execute(LOOSE).node for _ in range(6)}
        assert "node1" in served

    def test_resume_requires_draining(self):
        fleet = make_fleet()
        with pytest.raises(FleetStateError, match="not draining"):
            fleet.resume_node("node0")

    def test_cannot_drain_crashed_node(self):
        fleet = make_fleet()
        fleet.crash_node("node0")
        with pytest.raises(FleetStateError, match="cannot drain"):
            fleet.drain_node("node0")

    def test_status_reports_lifecycle(self):
        fleet = make_fleet()
        fleet.crash_node("node0")
        fleet.drain_node("node1")
        status = fleet.status()
        assert status["nodes"]["node0"]["lifecycle"] == "crashed"
        assert status["nodes"]["node1"]["lifecycle"] == "draining"
        assert status["nodes"]["node2"]["lifecycle"] == "up"


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
class TestPartition:
    def test_partition_cuts_only_that_node(self):
        fleet = make_fleet()
        fleet.network.partition("node0", 5.0)
        assert fleet.network.backend_available() is True
        assert fleet.network.backend_available(node="node0") is False
        assert fleet.network.backend_available(node="node1") is True
        assert fleet.network.partitioned_nodes() == ["node0"]
        assert fleet.status()["network"]["partitioned"] == ["node0"]

    def test_partitioned_node_degrades_strict_queries(self):
        fleet = make_fleet()
        fleet.network.stall_agents(30.0, node="node0")
        fleet.network.partition("node0", 30.0)
        fleet.run_for(8.0)  # staleness on node0 grows past the strict bound
        result = fleet.node("node0").execute(STRICT)
        assert result.routing == "local"
        assert any("degraded" in w for w in result.warnings)

    def test_partition_expires(self):
        fleet = make_fleet()
        fleet.network.partition("node2", 2.0)
        fleet.run_for(2.5)
        assert fleet.network.backend_available(node="node2") is True
        assert fleet.network.partitioned_nodes() == []


# ----------------------------------------------------------------------
# Agent failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_supervisor_promotes_standby_over_stalled_agent(self):
        fleet = make_fleet(failover_threshold=6.0)
        node = fleet.node("node0")
        old_agent = node.agents["r@node0"]
        fleet.network.stall_agents(60.0, node="node0")
        fleet.run_for(16.0)  # stall outlasts the threshold -> promotion
        new_agent = node.agents["r@node0"]
        assert new_agent is not old_agent
        assert node.supervisors["r@node0"].promotions >= 1
        snap = fleet.metrics.snapshot()
        assert snap['replication_failovers_total{region="r@node0"}'] >= 1
        events = fleet.metrics.events.recent(10, kind="failover")
        assert events and events[-1].attrs["region"] == "r@node0"

    def test_promoted_agent_catches_the_region_up(self):
        fleet = make_fleet(failover_threshold=6.0)
        node = fleet.node("node1")
        fleet.network.stall_agents(14.0, node="node1")
        fleet.backend.execute("INSERT INTO t VALUES (21, 210)")
        fleet.run_for(20.0)
        # The standby resumed from the checkpoint and replayed the tail.
        assert node.catalog.matview("t_copy").table.row_count == 21

    def test_promotion_does_not_double_apply(self):
        fleet = make_fleet(failover_threshold=6.0)
        node = fleet.node("node0")
        fleet.backend.execute("UPDATE t SET v = 999 WHERE id = 1")
        fleet.run_for(6.0)  # applied by the primary, checkpoint taken
        fleet.network.stall_agents(60.0, node="node0")
        fleet.run_for(16.0)  # promotion; standby replays from checkpoint
        view = node.catalog.matview("t_copy")
        rows = [values for _, values in view.table.scan() if values[0] == 1]
        assert rows == [(1, 999)]
        assert view.table.row_count == 20  # no duplicated rows

    def test_healthy_agent_not_promoted(self):
        fleet = make_fleet(failover_threshold=6.0)
        node = fleet.node("node0")
        agent = node.agents["r@node0"]
        fleet.run_for(30.0)
        assert node.agents["r@node0"] is agent
        assert node.supervisors["r@node0"].promotions == 0


# ----------------------------------------------------------------------
# Invariant checkers
# ----------------------------------------------------------------------
class TestInvariantChecker:
    def test_clean_result_passes(self):
        fleet = make_fleet()
        checker = InvariantChecker(fleet)
        result = fleet.execute(LOOSE)
        assert checker.check_result(result, 600.0) == []
        assert checker.violations == []

    def test_silent_staleness_is_a_violation(self):
        fleet = make_fleet()
        checker = InvariantChecker(fleet)
        result = fleet.execute(LOOSE)
        # Forge a result that silently read a 100 s-old snapshot.
        result.context.snapshots_used[:] = [fleet.clock.now() - 100.0]
        result.context.warnings.clear()
        (violation,) = checker.check_result(result, 2.0)
        assert violation.invariant == "currency_bound"
        assert violation.attrs["staleness"] == pytest.approx(100.0)

    def test_declared_staleness_is_not_a_violation(self):
        fleet = make_fleet()
        checker = InvariantChecker(fleet)
        result = fleet.execute(LOOSE)
        result.context.snapshots_used[:] = [fleet.clock.now() - 100.0]
        result.context.warnings[:] = ["degraded: serving stale"]
        assert checker.check_result(result, 2.0) == []

    def test_mixed_snapshots_are_a_violation(self):
        fleet = make_fleet()
        checker = InvariantChecker(fleet)
        result = fleet.execute(LOOSE)
        now = fleet.clock.now()
        result.context.snapshots_used[:] = [now - 1.0, now - 2.0]
        violations = checker.check_result(result, 600.0)
        assert [v.invariant for v in violations] == ["single_snapshot"]

    def test_raise_on_violation(self):
        fleet = make_fleet()
        checker = InvariantChecker(fleet, raise_on_violation=True)
        result = fleet.execute(LOOSE)
        result.context.snapshots_used[:] = [fleet.clock.now() - 100.0]
        result.context.warnings.clear()
        with pytest.raises(InvariantViolation):
            checker.check_result(result, 2.0)

    def test_violations_land_in_fleet_events_and_metrics(self):
        fleet = make_fleet()
        checker = InvariantChecker(fleet)
        result = fleet.execute(LOOSE)
        result.context.snapshots_used[:] = [fleet.clock.now() - 100.0]
        result.context.warnings.clear()
        checker.check_result(result, 2.0)
        events = fleet.metrics.events.recent(5, kind="invariant")
        assert events and events[-1].severity == "error"
        snap = fleet.metrics.snapshot()
        key = 'chaos_invariant_violations_total{invariant="currency_bound"}'
        assert snap[key] == 1

    def test_convergence_clean_after_settle(self):
        fleet = make_fleet()
        now = fleet.clock.now()
        for node in fleet.nodes:
            for agent in node.agents.values():
                agent.propagate(cutoff=now)
        checker = InvariantChecker(fleet)
        assert checker.check_convergence() == []
        assert checker.views_checked == 3

    def test_convergence_detects_divergence(self):
        fleet = make_fleet()
        now = fleet.clock.now()
        for node in fleet.nodes:
            for agent in node.agents.values():
                agent.propagate(cutoff=now)
        view = fleet.node("node0").catalog.matview("t_copy")
        rid = next(rid for rid, _ in view.table.scan())
        view.table.delete(rid)  # corrupt one local replica
        checker = InvariantChecker(fleet)
        (violation,) = checker.check_convergence()
        assert violation.invariant == "convergence"
        assert violation.attrs["node"] == "node0"

    def test_convergence_skips_crashed_nodes(self):
        fleet = make_fleet()
        now = fleet.clock.now()
        for node in fleet.nodes:
            for agent in node.agents.values():
                agent.propagate(cutoff=now)
        fleet.crash_node("node0")  # empty views must not count as divergence
        checker = InvariantChecker(fleet)
        assert checker.check_convergence() == []
        assert checker.views_checked == 2


# ----------------------------------------------------------------------
# The chaos scheduler, end to end
# ----------------------------------------------------------------------
def run_chaos(seed=11, duration=60.0):
    fleet = build_demo_fleet()
    chaos = ChaosScheduler(fleet, seed=seed)
    chaos.random_schedule(duration)
    return chaos.run(duration)


class TestChaosAcceptance:
    def test_seeded_schedule_is_deterministic_and_invariant_clean(self):
        first = run_chaos(seed=11)
        second = run_chaos(seed=11)
        # Same seed, same everything: identical event histories...
        assert first.history_lines() == second.history_lines()
        assert first.summary() == second.summary()
        # ...the required fault mix actually happened...
        kinds = [fault["kind"] for fault in first.faults]
        assert kinds.count("crash") >= 2
        assert "outage" in kinds and "partition" in kinds
        history = "\n".join(first.history_lines())
        assert "failover: promoted standby" in history
        # ...every crash recovered...
        assert len(first.recoveries()) >= 2
        # ...with zero raised errors and zero invariant violations...
        assert first.report.errors == 0
        assert first.violations == []
        assert first.checker.results_checked > 100
        # ...and ≥95% of in-fault-window queries served fresh-or-degraded.
        assert first.served_fraction() >= 0.95

    def test_different_seeds_differ(self):
        assert (
            run_chaos(seed=11, duration=30.0).history_lines()
            != run_chaos(seed=12, duration=30.0).history_lines()
        )

    def test_explicit_schedule_primitives(self):
        fleet = build_demo_fleet(n_nodes=2, n_rows=50)
        chaos = ChaosScheduler(fleet, seed=3)
        chaos.crash("node0", at=2.0, restart_after=3.0)
        chaos.outage(at=8.0, duration=1.5)
        chaos.partition("node1", at=4.0, duration=2.0)
        report = chaos.run(15.0, think_time=0.25)
        assert len(report.faults) == 3
        assert report.violations == []
        assert len(report.recoveries()) == 1
        assert report.served_fraction() >= 0.95


class TestChaosShell:
    def test_chaos_command_prints_summary(self):
        fleet = build_demo_fleet(n_nodes=2, n_rows=50)
        out = io.StringIO()
        Shell(fleet, out=out).handle("\\chaos 3 12")
        text = out.getvalue()
        assert "chaos: seed=3 duration=12s" in text
        assert "invariants: OK" in text

    def test_chaos_command_without_fleet(self):
        from repro.cache.mtcache import MTCache

        out = io.StringIO()
        Shell(MTCache(make_backend()), out=out).handle("\\chaos")
        assert "no fleet attached" in out.getvalue()

    def test_fleet_command_shows_lifecycle(self):
        fleet = make_fleet()
        fleet.crash_node("node0")
        out = io.StringIO()
        Shell(fleet, out=out).handle("\\fleet")
        text = out.getvalue()
        assert "node0: crashed" in text
        assert "node1: up" in text
        assert "partitioned=none" in text


class TestDefaultFactory:
    def test_reads_key_range_off_the_base_table(self):
        fleet = make_fleet()
        factory = default_point_lookup_factory(fleet)
        import random

        sql = factory(random.Random(0), 600)
        assert "FROM t t" in sql and "CURRENCY BOUND 600" in sql
