"""Tests for CachePlacement: remote SQL generation, view matching details,
view indexes, and guard-probability costing."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import CachePlacement, MTCache
from repro.optimizer.query_info import analyze_select
from repro.sql.parser import parse


@pytest.fixture()
def env():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE item (id INT NOT NULL, cat INT NOT NULL, price FLOAT NOT NULL, "
        "name VARCHAR(20) NOT NULL, PRIMARY KEY (id))"
    )
    backend.create_table(
        "CREATE TABLE sale (sid INT NOT NULL, item_id INT NOT NULL, qty INT NOT NULL, "
        "PRIMARY KEY (sid))"
    )
    rows = ", ".join(
        f"({i}, {i % 7}, {float(i)}, 'item-{i:04d}')" for i in range(1, 301)
    )
    backend.execute(f"INSERT INTO item VALUES {rows}")
    sales = ", ".join(f"({i}, {1 + i % 300}, {i % 5})" for i in range(1, 901))
    backend.execute(f"INSERT INTO sale VALUES {sales}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("item_copy", "item", ["id", "cat", "price", "name"], region="r1")
    cache.run_for(11)
    return backend, cache


def info_for(cache, sql):
    return analyze_select(parse(sql), cache.catalog)


class TestRemoteSQLGeneration:
    def test_operand_fetch_projects_needed_columns(self, env):
        _, cache = env
        placement = cache.placement
        info = info_for(cache, "SELECT i.id FROM item i WHERE i.cat = 3")
        candidate = placement._operand_remote_candidate(info.operand("i"))
        assert candidate.kind == "remote-fetch"
        # Build and inspect the shipped SQL via the operator.
        op = candidate.operator()
        assert "SELECT i.cat, i.id FROM item i" in op.sql
        assert "(i.cat = 3)" in op.sql
        assert "price" not in op.sql

    def test_operand_fetch_executes_correctly(self, env):
        backend, cache = env
        placement = cache.placement
        info = info_for(cache, "SELECT i.id FROM item i WHERE i.cat = 3")
        candidate = placement._operand_remote_candidate(info.operand("i"))
        rows = backend.execute_remote(candidate.operator().sql)
        assert all(r[0] == 3 for r in rows)  # cat sorted first alphabetically

    def test_subset_remote_includes_join_conjuncts(self, env):
        _, cache = env
        placement = cache.placement
        info = info_for(
            cache,
            "SELECT i.name, s.qty FROM item i, sale s "
            "WHERE i.id = s.item_id AND i.cat = 2",
        )
        candidate = placement.subset_remote_candidate(frozenset(["i", "s"]), info)
        sql = candidate.operator().sql
        assert "i.id = s.item_id" in sql
        assert "(i.cat = 2)" in sql
        assert "FROM item i, sale s" in sql

    def test_whole_query_strips_currency_clause(self, env):
        _, cache = env
        info = info_for(
            cache, "SELECT i.id FROM item i CURRENCY BOUND 0 SEC ON (i)"
        )
        candidate = cache.placement.whole_query_candidate(info)
        assert "CURRENCY" not in candidate.operator().sql

    def test_remote_width_uses_projection(self, env):
        _, cache = env
        placement = cache.placement
        narrow = info_for(cache, "SELECT i.id FROM item i")
        wide = info_for(cache, "SELECT i.id, i.name FROM item i")
        narrow_candidate = placement._operand_remote_candidate(narrow.operand("i"))
        wide_candidate = placement._operand_remote_candidate(wide.operand("i"))
        assert narrow_candidate.width < wide_candidate.width
        assert narrow_candidate.cost < wide_candidate.cost


class TestViewMatchingDetails:
    def test_matching_views_by_columns(self, env):
        _, cache = env
        cache.create_matview("item_narrow", "item", ["id", "cat"], region="r1")
        info = info_for(cache, "SELECT i.id FROM item i WHERE i.cat = 1")
        placement = cache.placement
        names = {v.name for v in placement._matching_views(info.operand("i"))}
        assert names == {"item_copy", "item_narrow"}
        info = info_for(cache, "SELECT i.price FROM item i")
        names = {v.name for v in placement._matching_views(info.operand("i"))}
        assert names == {"item_copy"}

    def test_predicate_view_requires_matching_conjunct(self, env):
        _, cache = env
        cache.create_matview(
            "cheap_items", "item", ["id", "price"], predicate="price < 100", region="r1"
        )
        placement = cache.placement
        with_pred = info_for(cache, "SELECT i.id FROM item i WHERE i.price < 100")
        names = {v.name for v in placement._matching_views(with_pred.operand("i"))}
        assert "cheap_items" in names
        without = info_for(cache, "SELECT i.id FROM item i WHERE i.price < 200")
        names = {v.name for v in placement._matching_views(without.operand("i"))}
        assert "cheap_items" not in names

    def test_view_secondary_index_changes_plan(self, env):
        _, cache = env
        # Without a secondary index the selective price query goes remote
        # (back-end has a pk index only here, so both scan; make the local
        # side win by indexing the view).
        sql = (
            "SELECT i.id, i.price FROM item i WHERE i.price BETWEEN 10 AND 12 "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        before = cache.optimize(sql)
        cache.create_view_index("item_copy", "ix_price", ["price"])
        after = cache.optimize(sql)
        assert "IndexRangeScan(item_copy.ix_price" in after.explain()
        assert after.cost <= before.cost

    def test_view_index_executes(self, env):
        _, cache = env
        cache.create_view_index("item_copy", "ix_price2", ["price"])
        result = cache.execute(
            "SELECT i.id FROM item i WHERE i.price BETWEEN 10 AND 12 "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        assert sorted(r[0] for r in result.rows) == [10, 11, 12]


class TestGuardProbabilityCosting:
    def test_cost_decreases_with_bound(self, env):
        _, cache = env
        costs = []
        for bound in (3, 5, 8, 12, 60):
            plan = cache.optimize(
                f"SELECT i.id FROM item i CURRENCY BOUND {bound} SEC ON (i)"
            )
            costs.append(plan.cost)
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_naive_placement_ignores_probability(self, env):
        _, cache = env
        from repro.optimizer.optimizer import Optimizer

        naive_placement = CachePlacement(cache, cache.cost_model, probability_aware=False)
        naive = Optimizer(naive_placement)
        tight = naive.optimize_info(
            info_for(cache, "SELECT i.id FROM item i CURRENCY BOUND 3 SEC ON (i)")
        )
        loose = naive.optimize_info(
            info_for(cache, "SELECT i.id FROM item i CURRENCY BOUND 60 SEC ON (i)")
        )
        if tight.summary() == loose.summary() == "guarded(item_copy)":
            assert tight.cost == pytest.approx(loose.cost)


class TestMultiViewChoice:
    def test_optimizer_handles_overlapping_views(self, env):
        _, cache = env
        cache.create_matview("item_narrow2", "item", ["id", "cat"], region="r1")
        result = cache.execute(
            "SELECT i.id, i.cat FROM item i WHERE i.cat = 4 CURRENCY BOUND 60 SEC ON (i)"
        )
        assert all(r[1] == 4 for r in result.rows)
        assert result.context.branches[0][1] == 0  # served locally

    def test_views_across_regions_both_usable_for_separate_classes(self, env):
        _, cache = env
        cache.create_region("r2", 8, 2, heartbeat_interval=1)
        cache.create_matview("sale_copy", "sale", ["sid", "item_id", "qty"], region="r2")
        cache.run_for(12)
        result = cache.execute(
            "SELECT i.name, s.qty FROM item i, sale s WHERE i.id = s.item_id "
            "AND i.cat = 2 CURRENCY BOUND 60 SEC ON (i), 60 SEC ON (s)"
        )
        assert len(result.rows) > 0
        assert result.context.remote_queries == []
