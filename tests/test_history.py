"""Tests for repro.history: the run-history recorder and the offline
consistency certifier (DESIGN.md §13).

Covers the recorder's capture points (commits, queries, DML, timeline
brackets, scatter fan-outs, fleet events), the canonical JSONL round
trip and digest determinism, clean certification of the default seeded
chaos schedules, and the three planted anomalies the certifier must
catch: a broken currency guard, a torn scatter-gather snapshot, and a
skipped session floor — each producing exactly its expected Anomaly
kind and nothing else.
"""

import io

from repro import BackendServer, FleetConfig, MTCache, Session
from repro.chaos import ChaosScheduler, build_demo_fleet, build_ledger_fleet
from repro.cli import run_script
from repro.common.errors import InvariantViolation
from repro.history import (
    ConsistencyCertifier,
    History,
    HistoryRecorder,
    ascii_timeline,
    render_certificates,
)
from repro.history.certify import CHECKS
from repro.semantics import delta_consistency_bound

LEDGER_DDL = (
    "CREATE TABLE ledger (tid INT NOT NULL, leg INT NOT NULL, "
    "account INT NOT NULL, delta INT NOT NULL, PRIMARY KEY (tid, leg))"
)
READ_TID1 = (
    "SELECT l.tid, l.leg, l.account, l.delta FROM ledger l "
    "WHERE l.tid = 1 CURRENCY BOUND 600 SEC ON (l)"
)
READ_TID2 = (
    "SELECT l.tid, l.leg, l.account, l.delta FROM ledger l "
    "WHERE l.tid = 2 CURRENCY BOUND 600 SEC ON (l)"
)
TRANSFER_TID2 = "INSERT INTO ledger VALUES (2, 0, 3, 10), (2, 1, 4, -10)"


def make_recording_cache():
    backend = BackendServer()
    backend.create_table(LEDGER_DDL)
    backend.execute("INSERT INTO ledger VALUES (1, 0, 1, 50), (1, 1, 2, -50)")
    backend.refresh_statistics()
    cache = MTCache(backend, record_history=True)
    cache.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
    cache.create_matview("ledger_copy", "ledger",
                         ["tid", "leg", "account", "delta"], region="r")
    cache.declare_table_consistency("ledger", "strict")
    cache.run_for(3.0)
    return cache


def make_join_cache():
    """Two views in one region, so a two-table consistency class reads
    two copies of the same snapshot."""
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE books (isbn INT NOT NULL, price INT NOT NULL, "
        "PRIMARY KEY (isbn))"
    )
    backend.create_table(
        "CREATE TABLE reviews (rid INT NOT NULL, isbn INT NOT NULL, "
        "rating INT NOT NULL, PRIMARY KEY (rid))"
    )
    backend.execute("INSERT INTO books VALUES (1, 10), (2, 20)")
    backend.execute("INSERT INTO reviews VALUES (1, 1, 5), (2, 2, 4)")
    backend.refresh_statistics()
    cache = MTCache(backend, record_history=True)
    cache.create_region("br", 2.0, 0.5, heartbeat_interval=0.5)
    cache.create_matview("books_copy", "books", ["isbn", "price"],
                         region="br")
    cache.create_matview("reviews_copy", "reviews",
                         ["rid", "isbn", "rating"], region="br")
    cache.run_for(4.0)
    return cache


JOIN_ONE_CLASS = (
    "SELECT b.isbn, r.rating FROM books b, reviews r "
    "WHERE b.isbn = r.isbn CURRENCY BOUND 600 SEC ON (b, r)"
)


def certify(cache_or_history):
    history = (
        cache_or_history if isinstance(cache_or_history, History)
        else cache_or_history.history.history
    )
    return ConsistencyCertifier(history).certify()


def anomaly_kinds(report):
    return {a.check for a in report.anomalies}


# ----------------------------------------------------------------------
# Recorder capture points
# ----------------------------------------------------------------------
class TestRecorder:
    def test_commits_recorded_per_source(self):
        cache = make_recording_cache()
        cache.execute(TRANSFER_TID2)
        commits = cache.history.history.commits("backend")
        assert commits, "commits after attachment should be observed"
        assert [c["txn"] for c in commits] == sorted(
            c["txn"] for c in commits
        )
        transfer = [c for c in commits if c["tables"] == ["ledger"]]
        assert transfer, "the transfer commit must name its table"
        assert transfer[0]["n_ops"] == 2

    def test_sharded_backend_yields_shard_precise_sources(self):
        config = FleetConfig(nodes=1, partitions=2, record_history=True)
        fleet = config.build()
        backend = fleet.backend
        backend.create_table(
            "CREATE TABLE item (id INT NOT NULL, v INT NOT NULL, "
            "PRIMARY KEY (id))"
        )
        backend.execute(
            "INSERT INTO item VALUES (1, 1), (2, 2), (3, 3), (4, 4), "
            "(5, 5), (6, 6), (7, 7), (8, 8)"
        )
        sources = {
            c["source"] for c in fleet.history.history.commits()
        }
        assert sources == {"p0", "p1"}

    def test_query_record_carries_reads_and_bound(self):
        cache = make_recording_cache()
        result = cache.execute(READ_TID1)
        qid = result.history_qid
        record = cache.history.history.query(qid)
        assert record["bound"] == 600.0
        assert record["routing"] == result.routing
        assert record["rows"] == len(result.rows)
        assert record["snapshots"]
        assert record["reads"], "local serve must capture its reads"
        read = record["reads"][0]
        assert read["view"] == "ledger_copy"
        assert read["table"] == "ledger"
        assert read["region"] == "r"
        assert read["strict"] is True
        assert set(read["sources"]) == {"backend"}
        assert read["sources"]["backend"] >= 1

    def test_dml_record_carries_commit_floors(self):
        cache = make_recording_cache()
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        dmls = cache.history.history.by_kind("dml")
        assert len(dmls) == 1
        record = dmls[0]
        assert record["table"] == "ledger"
        assert record["rowcount"] == 2
        assert record["session"] == "writer"
        assert record["commits"] == [
            ["backend", session.floors["backend"]]
        ]

    def test_timeline_bracket_recorded(self):
        cache = make_recording_cache()
        cache.execute("BEGIN TIMEORDERED")
        cache.execute(READ_TID1)
        cache.execute("END TIMEORDERED")
        events = [
            r["event"] for r in cache.history.history.by_kind("timeline")
        ]
        assert events == ["begin", "end"]

    def test_disabled_recorder_freezes_the_history(self):
        cache = make_recording_cache()
        before = len(cache.history.history)
        cache.history.enabled = False
        cache.execute(READ_TID1)
        assert len(cache.history.history) == before
        cache.history.enabled = True
        cache.execute(READ_TID1)
        assert len(cache.history.history) > before

    def test_recording_off_by_default(self):
        backend = BackendServer()
        backend.create_table(LEDGER_DDL)
        cache = MTCache(backend)
        assert cache.history is None

    def test_scatter_record_references_leg_qids(self):
        fleet, history = _sharded_item_fleet()
        scatters = history.by_kind("scatter")
        assert len(scatters) == 1
        scatter = scatters[0]
        assert len(scatter["legs"]) == len(scatter["shards"]) == 2
        for qid in scatter["legs"]:
            leg = history.query(qid)
            assert leg["reads"]
        assert scatter["rows"] == 8


def _sharded_item_fleet():
    """A 2-shard fleet plus one executed scatter-gather query; returns
    ``(fleet, history)``."""
    fleet = FleetConfig(nodes=2, partitions=2, record_history=True).build()
    backend = fleet.backend
    backend.create_table(
        "CREATE TABLE item (id INT NOT NULL, v INT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    backend.execute(
        "INSERT INTO item VALUES (1, 1), (2, 2), (3, 3), (4, 4), "
        "(5, 5), (6, 6), (7, 7), (8, 8)"
    )
    backend.refresh_statistics()
    fleet.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
    fleet.create_matview("item_copy", "item", ["id", "v"], region="r")
    fleet.run_for(3.0)
    result = fleet.execute(
        "SELECT i.id, i.v FROM item i "
        "WHERE i.id IN (1, 2, 3, 4, 5, 6, 7, 8) "
        "CURRENCY BOUND 600 SEC ON (i)"
    )
    assert len(result.shard_results) == 2
    return fleet, fleet.history.history


# ----------------------------------------------------------------------
# Serialization: canonical JSONL + digests
# ----------------------------------------------------------------------
class TestSerialization:
    def test_jsonl_round_trip(self):
        cache = make_recording_cache()
        cache.execute(READ_TID1)
        history = cache.history.history
        loaded = History.from_jsonl(history.to_jsonl())
        assert loaded.records == history.records
        assert loaded.digest() == history.digest()

    def test_dump_and_load(self, tmp_path):
        cache = make_recording_cache()
        cache.execute(READ_TID1)
        history = cache.history.history
        path = tmp_path / "history.jsonl"
        digest = history.dump(path)
        assert digest == history.digest()
        assert History.load(path).digest() == digest

    def test_identical_runs_identical_digests(self):
        digests = []
        for _ in range(2):
            cache = make_recording_cache()
            session = Session("writer")
            cache.execute(TRANSFER_TID2, session=session)
            cache.run_for(2.0)
            cache.execute(READ_TID2, session=session)
            digests.append(cache.history.history.digest())
        assert digests[0] == digests[1]

    def test_empty_history_serializes_empty(self):
        history = History()
        assert history.to_jsonl() == ""
        assert History.from_jsonl("").records == []


# ----------------------------------------------------------------------
# Clean certification of the default seeded chaos schedules
# ----------------------------------------------------------------------
class TestCleanCertification:
    def test_sharded_lookup_chaos_certifies_clean(self):
        fleet = build_demo_fleet(partitions=2, record_history=True)
        chaos = ChaosScheduler(fleet, seed=11)
        chaos.random_schedule(20.0)
        report = chaos.run(20.0)
        assert report.certification is not None
        assert report.certification["anomalies"] == 0
        assert set(report.certification["checks"]) == set(CHECKS)
        assert report.certification["checks"]["currency_bound"]["checked"] > 0
        # the verdict lands in the fleet event log (and the run history)
        assert any(
            e.kind == "certify" and e.severity == "info"
            for e in fleet.metrics.events
        )
        assert "certification" in report.summary()

    def test_ledger_chaos_certifies_clean_with_session_coverage(self):
        fleet, workload = build_ledger_fleet(record_history=True)
        chaos = ChaosScheduler(fleet, seed=23)
        chaos.random_schedule(20.0)
        report = chaos.run(20.0, workload=workload)
        assert report.certification["anomalies"] == 0
        checks = report.certification["checks"]
        assert checks["session_ryw"]["checked"] > 0
        assert checks["monotonic_reads"]["checked"] > 0

    def test_unrecorded_run_has_no_certification(self):
        fleet = build_demo_fleet()
        chaos = ChaosScheduler(fleet, seed=11)
        chaos.random_schedule(10.0)
        report = chaos.run(10.0)
        assert report.certification is None
        assert "certification" not in report.summary()


# ----------------------------------------------------------------------
# Planted anomalies: each must fire exactly its own check
# ----------------------------------------------------------------------
class TestPlantedAnomalies:
    def test_broken_guard_is_caught_by_currency_bound(self, monkeypatch):
        cache = make_recording_cache()

        def broken_guard(self, view, bound, shard=None):
            # A guard that never probes the heartbeat: it vouches for
            # the local snapshot no matter how stale it is.
            strict = self.table_consistency(view.base_table) == "strict"

            def selector(ctx):
                snapshot = self._view_snapshot(view, shard)
                ctx.record_snapshot(snapshot)
                if ctx.capture_reads:
                    ctx.record_read(
                        view.name, view.base_table, view.region, shard,
                        snapshot, strict,
                        self._read_sources(view.region, shard),
                    )
                return 0

            selector.guard_params = {
                "view": view.name, "bound": bound, "shard": shard,
            }
            return selector

        monkeypatch.setattr(MTCache, "make_currency_guard", broken_guard)
        cache.clock.advance(1000.0)  # replica is now ~1000s stale
        result = cache.execute(READ_TID1)  # bound: 600s
        assert result.routing == "local"
        assert not result.warnings  # silently wrong — the certifier's case
        report = certify(cache)
        assert anomaly_kinds(report) == {"currency_bound"}
        (anomaly,) = report.anomalies
        assert anomaly.qid == result.history_qid
        assert anomaly.attrs["staleness"] > anomaly.attrs["bound"] == 600.0

    def test_torn_scatter_snapshot_is_caught_by_snapshot_consistency(self):
        fleet, history = _sharded_item_fleet()
        assert certify(history).ok  # clean before the plant
        scatter = history.by_kind("scatter")[0]
        leg = history.query(scatter["legs"][0])
        # Plant the tear: the leg suddenly vouches for a second copy of
        # the same table at a different snapshot (identical sync points,
        # so Δ-consistency stays clean — the *snapshot* is what tore).
        torn = dict(leg["reads"][0])
        torn["snapshot"] = torn["snapshot"] + 5.0
        leg["reads"].append(torn)
        report = certify(history)
        assert anomaly_kinds(report) == {"snapshot_consistency"}
        (anomaly,) = report.anomalies
        assert anomaly.qid == leg["qid"]
        assert anomaly.attrs["spread"] == 5.0

    def test_skipped_session_floor_is_caught_by_session_ryw(self, monkeypatch):
        cache = make_recording_cache()
        # The floor check claims every floor is satisfied, so the guard
        # serves the strict read locally before the agent has applied
        # the session's own write.
        monkeypatch.setattr(
            MTCache, "_session_floor_check",
            lambda self, region, shard, session: (True, None),
        )
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        result = cache.execute(READ_TID2, session=session)
        assert result.routing == "local"
        report = certify(cache)
        assert anomaly_kinds(report) == {"session_ryw"}
        (anomaly,) = report.anomalies
        assert anomaly.attrs["source"] == "backend"
        assert anomaly.attrs["applied"] < anomaly.attrs["floor"]
        assert anomaly.attrs["session"] == "writer"


# ----------------------------------------------------------------------
# Satellite: repro.cc / repro.semantics properties from recorded history
# ----------------------------------------------------------------------
class TestRecordedHistoryProperties:
    def test_delta_consistency_over_recorded_sync_points(self):
        cache = make_join_cache()
        result = cache.execute(JOIN_ONE_CLASS)
        record = cache.history.history.query(result.history_qid)
        assert record["classes"] == [["books", "reviews"]]
        assert len(record["reads"]) == 2
        # Both copies were read at the same applied-txn sync point, so
        # the appendix's Δ-consistency distance over the recorded points
        # is exactly 0 — and the certifier agrees.
        points = [r["sources"]["backend"] for r in record["reads"]]
        assert delta_consistency_bound(points) == 0
        cert = certify(cache).certificate("delta_consistency")
        assert cert.checked >= 1 and cert.ok

    def test_delta_drift_in_recorded_history_is_flagged(self):
        cache = make_join_cache()
        result = cache.execute(JOIN_ONE_CLASS)
        record = cache.history.history.query(result.history_qid)
        # Drift one copy two transactions behind its sibling: Δ = 2.
        record["reads"][0]["sources"]["backend"] -= 2
        points = [r["sources"]["backend"] for r in record["reads"]]
        assert delta_consistency_bound(points) == 2
        report = certify(cache)
        assert anomaly_kinds(report) == {"delta_consistency"}
        (anomaly,) = report.anomalies
        assert anomaly.attrs["delta"] == 2

    def test_recorded_timeline_bracket_replays_through_cc_session(self):
        from repro.cc.timeline import TimelineSession

        cache = make_recording_cache()
        cache.execute("BEGIN TIMEORDERED")
        cache.execute(READ_TID1)
        cache.run_for(2.0)
        cache.execute(READ_TID1)
        cache.execute("END TIMEORDERED")
        history = cache.history.history
        # Replaying the recorded snapshots through the live TIMEORDERED
        # semantics (repro.cc) accepts every read the bracket served.
        timeline = TimelineSession()
        for record in history:
            if record["kind"] == "timeline":
                timeline.begin() if record["event"] == "begin" \
                    else timeline.end()
                continue
            if record["kind"] != "query" or not timeline.active:
                continue
            for snapshot in record["snapshots"]:
                assert timeline.admits(snapshot)
                timeline.observe(snapshot)
        cert = certify(cache).certificate("timeline")
        assert cert.details["brackets"] == 1
        assert cert.checked >= 2 and cert.ok

    def test_regressing_snapshot_inside_bracket_is_flagged(self):
        history = History()
        history.append({"kind": "timeline", "node": "cache",
                        "event": "begin", "time": 0.0})
        history.append(_query_record(1, time=1.0, snapshots=[10.0]))
        history.append(_query_record(2, time=2.0, snapshots=[5.0]))
        report = ConsistencyCertifier(history).certify()
        assert anomaly_kinds(report) == {"timeline"}
        (anomaly,) = report.anomalies
        assert anomaly.qid == 2
        assert anomaly.attrs["watermark"] == 10.0

    def test_monotonic_reads_reset_on_lifecycle_event(self):
        read = {"view": "v", "table": "t", "region": "r", "shard": None,
                "strict": False, "sources": {"backend": 3}}
        regress = [
            _query_record(1, time=1.0, snapshots=[10.0], session="s",
                          reads=[dict(read, snapshot=10.0)]),
            _query_record(2, time=2.0, snapshots=[5.0], session="s",
                          reads=[dict(read, snapshot=5.0)]),
        ]
        # Bare regression: an anomaly...
        report = ConsistencyCertifier(History(list(regress))).certify()
        assert anomaly_kinds(report) == {"monotonic_reads"}
        # ...but a node rebuild between the reads excuses it (a restarted
        # replica is a new copy; the series restarts).
        rebuilt = History([
            regress[0],
            {"kind": "event", "event": "lifecycle", "severity": "info",
             "message": "node up", "time": 1.5, "attrs": {"node": "cache"}},
            regress[1],
        ])
        report = ConsistencyCertifier(rebuilt).certify()
        assert report.certificate("monotonic_reads").ok
        assert report.certificate("monotonic_reads").details[
            "replica_resets"] == 1


def _query_record(qid, *, time, snapshots, session=None, reads=None):
    return {
        "kind": "query", "qid": qid, "node": "cache", "time": time,
        "sql": "SELECT 1", "bound": None, "classes": [], "routing": "local",
        "snapshots": snapshots, "reads": reads or [], "branches": [],
        "warnings": 0, "remote_queries": 0, "session": session,
        "floors": {"backend": 1} if session else None, "rows": 1,
    }


# ----------------------------------------------------------------------
# Satellite: session guards in slo_report and \events; grouped violations
# ----------------------------------------------------------------------
class TestObservabilitySatellites:
    def test_slo_report_session_guards(self):
        fleet = FleetConfig(nodes=2).build()
        backend = fleet.backend
        backend.create_table(LEDGER_DDL)
        backend.execute(
            "INSERT INTO ledger VALUES (1, 0, 1, 50), (1, 1, 2, -50)"
        )
        backend.refresh_statistics()
        fleet.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
        fleet.create_matview("ledger_copy", "ledger",
                             ["tid", "leg", "account", "delta"], region="r")
        fleet.declare_table_consistency("ledger", "strict")
        fleet.run_for(3.0)
        session = Session("writer")
        fleet.execute(TRANSFER_TID2, session=session)
        fleet.execute(READ_TID2, session=session)
        fleet.run_for(3.0)
        fleet.execute(READ_TID2, session=session)
        report = fleet.slo_report()
        assert "session_guards" in report
        totals = {}
        for node_counts in report["session_guards"].values():
            for outcome, n in node_counts.items():
                totals[outcome] = totals.get(outcome, 0) + n
        assert sum(totals.values()) >= 2
        assert set(totals) <= {"local", "remote"}

    def test_events_command_summarizes_session_guards(self):
        cache = make_recording_cache()
        session = Session("writer")
        cache.execute(TRANSFER_TID2, session=session)
        cache.execute(READ_TID2, session=session)
        out = io.StringIO()
        run_script(cache, ["\\events"], out=out)
        text = out.getvalue()
        assert "session guards:" in text
        assert "remote=" in text

    def test_events_command_without_session_guards_stays_quiet(self):
        cache = make_recording_cache()
        cache.execute(READ_TID1)
        out = io.StringIO()
        run_script(cache, ["\\events"], out=out)
        assert "session guards:" not in out.getvalue()

    def test_chaos_summary_groups_violations_by_check(self):
        fleet = build_demo_fleet()
        chaos = ChaosScheduler(fleet, seed=11)
        chaos.random_schedule(10.0)
        report = chaos.run(10.0)
        assert report.summary()["invariant_violations_by_check"] == {}
        report.violations.extend([
            InvariantViolation("currency_bound", "planted"),
            InvariantViolation("currency_bound", "planted again"),
            InvariantViolation("convergence", "planted"),
        ])
        summary = report.summary()
        assert summary["invariant_violations"] == 3
        assert summary["invariant_violations_by_check"] == {
            "convergence": 1, "currency_bound": 2,
        }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_render_certificates_marks_verdicts(self):
        cache = make_recording_cache()
        cache.execute(READ_TID1)
        lines = render_certificates(certify(cache))
        text = "\n".join(lines)
        assert "[ok  ] currency_bound" in text
        for check in CHECKS:
            assert check in text

    def test_ascii_timeline_draws_lanes(self):
        cache = make_recording_cache()
        cache.execute(READ_TID1)
        lines = ascii_timeline(cache.history.history)
        text = "\n".join(lines)
        assert "commits backend" in text
        assert "queries" in text
