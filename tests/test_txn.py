"""Tests for the transaction manager and replication log."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import StorageError, TransactionError
from repro.storage.schema import Column, DataType, Schema
from repro.storage.table import HeapTable
from repro.txn.log import Operation
from repro.txn.manager import TransactionManager


def make_manager():
    clock = SimulatedClock()
    schema = Schema(
        [Column("id", DataType.INT, nullable=False), Column("v", DataType.FLOAT)]
    )
    table = HeapTable("t", schema, primary_key=["id"])
    manager = TransactionManager(clock, {"t": table})
    return clock, table, manager


class TestCommitOrdering:
    def test_ids_increase_monotonically(self):
        _, _, manager = make_manager()
        ids = []
        for i in range(3):
            txn = manager.begin()
            txn.insert("t", (i, 1.0))
            ids.append(txn.commit())
        assert ids == [1, 2, 3]

    def test_commit_time_from_clock(self):
        clock, _, manager = make_manager()
        clock.advance(12.5)
        txn = manager.begin()
        txn.insert("t", (1, 1.0))
        txn.commit()
        assert txn.commit_time == 12.5

    def test_last_txn_id(self):
        _, _, manager = make_manager()
        assert manager.last_txn_id == 0
        manager.run(lambda txn: txn.insert("t", (1, 1.0)))
        assert manager.last_txn_id == 1


class TestApplication:
    def test_insert_applies_with_xtime(self):
        _, table, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (1, 2.0)))
        rid = table.pk_lookup((1,))
        assert table.row(rid) == (1, 2.0)
        assert table.version(rid).xtime == 1

    def test_update_applies(self):
        _, table, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (1, 2.0)))
        manager.run(lambda txn: txn.update("t", (1,), (1, 9.0)))
        rid = table.pk_lookup((1,))
        assert table.row(rid) == (1, 9.0)
        assert table.version(rid).xtime == 2

    def test_delete_applies(self):
        _, table, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (1, 2.0)))
        manager.run(lambda txn: txn.delete("t", (1,)))
        assert table.row_count == 0

    def test_update_missing_row_fails(self):
        _, _, manager = make_manager()
        txn = manager.begin()
        txn.update("t", (99,), (99, 1.0))
        with pytest.raises(StorageError):
            txn.commit()

    def test_multi_op_transaction_single_id(self):
        _, table, manager = make_manager()
        manager.run(lambda txn: [txn.insert("t", (1, 1.0)), txn.insert("t", (2, 2.0))])
        xtimes = {v.xtime for _, v in table.scan_versions()}
        assert xtimes == {1}

    def test_abort_discards_ops(self):
        _, table, manager = make_manager()
        txn = manager.begin()
        txn.insert("t", (1, 1.0))
        txn.abort()
        assert table.row_count == 0
        assert manager.last_txn_id == 0

    def test_aborted_txn_rejects_further_use(self):
        _, _, manager = make_manager()
        txn = manager.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.insert("t", (1, 1.0))
        with pytest.raises(TransactionError):
            txn.commit()

    def test_committed_txn_rejects_further_use(self):
        _, _, manager = make_manager()
        txn = manager.begin()
        txn.insert("t", (1, 1.0))
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_run_aborts_on_exception(self):
        _, table, manager = make_manager()

        def bad(txn):
            txn.insert("t", (1, 1.0))
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            manager.run(bad)
        assert table.row_count == 0

    def test_unknown_table_rejected(self):
        _, _, manager = make_manager()
        txn = manager.begin()
        with pytest.raises(TransactionError):
            txn.insert("nope", (1, 1.0))

    def test_bad_row_rejected_at_buffer_time(self):
        _, _, manager = make_manager()
        txn = manager.begin()
        with pytest.raises(StorageError):
            txn.insert("t", ("x", 1.0))


class TestReplicationLog:
    def test_records_appended_in_order(self):
        _, _, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (1, 1.0)))
        manager.run(lambda txn: txn.update("t", (1,), (1, 2.0)))
        manager.run(lambda txn: txn.delete("t", (1,)))
        ops = [r.op for r in manager.log]
        assert ops == [Operation.INSERT, Operation.UPDATE, Operation.DELETE]
        assert [r.txn_id for r in manager.log] == [1, 2, 3]

    def test_record_carries_pk_and_values(self):
        _, _, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (7, 3.5)))
        record = manager.log.records[0]
        assert record.table == "t"
        assert record.pk == (7,)
        assert record.values == (7, 3.5)

    def test_update_record_carries_old_values(self):
        _, _, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (7, 3.5)))
        manager.run(lambda txn: txn.update("t", (7,), (7, 4.5)))
        record = manager.log.records[1]
        assert record.old_values == (7, 3.5)
        assert record.values == (7, 4.5)

    def test_records_for_filters(self):
        clock, _, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (1, 1.0)))
        clock.advance(10.0)
        manager.run(lambda txn: txn.insert("t", (2, 2.0)))
        records = list(manager.log.records_for("t", after_txn=0, up_to_commit_time=5.0))
        assert [r.pk for r in records] == [(1,)]
        records = list(manager.log.records_for("t", after_txn=1))
        assert [r.pk for r in records] == [(2,)]

    def test_last_txn_before(self):
        clock, _, manager = make_manager()
        manager.run(lambda txn: txn.insert("t", (1, 1.0)))
        clock.advance(10.0)
        manager.run(lambda txn: txn.insert("t", (2, 2.0)))
        assert manager.log.last_txn_before(5.0) == 1
        assert manager.log.last_txn_before(15.0) == 2
        assert manager.log.last_txn_before(-1.0) == 0

    def test_seq_numbers_are_global(self):
        _, _, manager = make_manager()
        manager.run(lambda txn: [txn.insert("t", (1, 1.0)), txn.insert("t", (2, 1.0))])
        assert [r.seq for r in manager.log] == [0, 1]
