"""Grab-bag edge-case tests across modules."""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.cli import run_script


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


class TestCliRobustness:
    def test_bad_advance_argument_is_reported(self, cache):
        out = io.StringIO()
        run_script(cache, ["\\advance soon"], out=out)
        assert "internal error" in out.getvalue()

    def test_empty_result_table_renders(self, cache):
        out = io.StringIO()
        run_script(cache, ["SELECT x.id FROM t x WHERE x.id > 99"], out=out)
        assert "(0 row(s))" in out.getvalue()

    def test_wide_result_truncated(self, cache):
        backend = cache.backend
        values = ", ".join(f"({i}, {i})" for i in range(3, 60))
        backend.execute(f"INSERT INTO t VALUES {values}")
        out = io.StringIO()
        run_script(cache, ["SELECT x.id FROM t x"], out=out)
        assert "rows total" in out.getvalue()


class TestExplainEdgeCases:
    def test_explain_complex_query_on_cache(self, cache):
        result = cache.execute(
            "EXPLAIN SELECT s.id FROM (SELECT id FROM t) s"
        )
        text = "\n".join(line for (line,) in result.rows)
        assert "remote" in text
        assert "constraint" in text

    def test_explain_includes_constraint_classes(self, cache):
        result = cache.execute(
            "EXPLAIN SELECT a.id, b.v FROM t a, t b WHERE a.id = b.id "
            "CURRENCY BOUND 10 SEC ON (a, b)"
        )
        text = "\n".join(line for (line,) in result.rows)
        assert "a" in text and "b" in text


class TestResultHelpers:
    def test_column_lookup_missing_raises(self, cache):
        result = cache.execute("SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)")
        with pytest.raises(ValueError):
            result.column("nope")

    def test_as_dicts(self, cache):
        result = cache.execute("SELECT x.id, x.v FROM t x CURRENCY BOUND 60 SEC ON (x)")
        dicts = result.as_dicts()
        assert {"id", "v"} <= set(dicts[0])


class TestAgentRobustness:
    def test_records_for_unsubscribed_tables_skipped(self, cache):
        backend = cache.backend
        backend.create_table(
            "CREATE TABLE other (id INT NOT NULL, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO other VALUES (1)")
        foreign_txn = backend.txn_manager.last_txn_id
        # The agent must skip 'other' records without touching its views.
        cache.run_for(15.0)
        view = cache.catalog.matview("t_copy")
        assert view.table.row_count == 2
        # And the region's snapshot still advanced past the foreign txn.
        assert view.applied_txn >= foreign_txn

    def test_propagate_is_idempotent(self, cache):
        agent = cache.agents["r1"]
        now = cache.clock.now()
        first = agent.propagate(cutoff=now)
        second = agent.propagate(cutoff=now)
        assert second == 0

    def test_stale_cutoff_is_noop(self, cache):
        agent = cache.agents["r1"]
        assert agent.propagate(cutoff=agent.snapshot_time - 5.0) == 0


class TestPlanCacheTimelineInterplay:
    def test_cached_plan_respects_timeline_watermark(self, cache):
        sql = "SELECT x.id FROM t x CURRENCY BOUND 600 SEC ON (x)"
        cache.execute(sql)  # populate the plan cache (local branch)
        cache.execute("BEGIN TIMEORDERED")
        cache.execute("SELECT x.id FROM t x CURRENCY BOUND 0 SEC ON (x)")  # watermark=now
        result = cache.execute(sql)  # same cached plan, now must go remote
        assert result.context.branches == [("t_copy", 1)]
        cache.execute("END TIMEORDERED")


class TestMultipleViewsSameRegion:
    def test_cheapest_covering_view_wins(self, cache):
        # A narrow view over (id) is cheaper to scan for an id-only query.
        narrow = cache.create_matview("t_narrow", "t", ["id"], region="r1")
        # Make the narrow view appear much cheaper by inflating the wide
        # view's statistics.
        wide = cache.catalog.matview("t_copy")
        wide.stats = wide.stats.scaled(1000.0)
        plan = cache.optimize("SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)",
                              use_cache=False)
        assert "t_narrow" in plan.summary()


class TestSchemaEdges:
    def test_project_unknown_column(self, cache):
        from repro.common.errors import CatalogError

        schema = cache.backend.catalog.table("t").schema
        with pytest.raises(CatalogError):
            schema.project(["nope"])

    def test_insert_wrong_arity_via_storage(self, cache):
        from repro.common.errors import StorageError

        table = cache.backend.catalog.table("t").table
        with pytest.raises(StorageError):
            table.insert((1,))


class TestResultCacheWithAst:
    def test_parsed_statement_accepted(self, cache):
        from repro.resultcache import ResultCache
        from repro.sql.parser import parse

        rc = ResultCache(cache)
        stmt = parse("SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)")
        first = rc.execute(stmt)
        second = rc.execute(stmt)
        assert first.rows == second.rows
        assert rc.stats["hits"] == 1
