"""Final polish tests: statement reprs, log introspection, scheduler-driven
end-to-end timing, and cross-component sanity."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.sql import ast
from repro.sql.parser import parse


class TestStatementRendering:
    CASES = [
        ("SELECT a FROM t", ast.Select),
        ("INSERT INTO t VALUES (1)", ast.Insert),
        ("UPDATE t SET a = 1", ast.Update),
        ("DELETE FROM t", ast.Delete),
        ("CREATE TABLE t (a INT)", ast.CreateTable),
        ("CREATE INDEX i ON t (a)", ast.CreateIndex),
        ("BEGIN TIMEORDERED", ast.BeginTimeordered),
        ("END TIMEORDERED", ast.EndTimeordered),
        ("EXPLAIN SELECT a FROM t", ast.Explain),
        ("CREATE CURRENCY REGION r INTERVAL 5 SEC DELAY 1 SEC", ast.CreateRegion),
        (
            "CREATE MATERIALIZED VIEW v IN REGION r AS SELECT a FROM t",
            ast.CreateMatview,
        ),
    ]

    @pytest.mark.parametrize("sql,node", CASES)
    def test_type_and_repr(self, sql, node):
        stmt = parse(sql)
        assert isinstance(stmt, node)
        assert node.__name__ in repr(stmt)
        # Every statement's to_sql must reparse to the same type.
        assert isinstance(parse(stmt.to_sql()), node)


class TestLogIntrospection:
    def test_log_repr(self):
        backend = BackendServer()
        backend.create_table("CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a))")
        backend.execute("INSERT INTO t VALUES (1)")
        record = backend.txn_manager.log.records[0]
        assert "insert" in repr(record)
        assert "t" in repr(record)

    def test_committed_list(self):
        backend = BackendServer()
        backend.create_table("CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a))")
        backend.clock.advance(3.0)
        backend.execute("INSERT INTO t VALUES (1)")
        assert backend.txn_manager.committed == [(1, 3.0)]


class TestSchedulerDrivenEndToEnd:
    def test_everything_on_one_timeline(self):
        """Heartbeats, two agents at different rates, writes and guarded
        reads all driven by a single scheduler, with exact staleness math."""
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (a INT NOT NULL, b INT NOT NULL, PRIMARY KEY (a))"
        )
        backend.execute("INSERT INTO t VALUES (1, 1)")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("fast", 4.0, 1.0, heartbeat_interval=0.5)
        cache.create_region("slow", 16.0, 4.0, heartbeat_interval=2.0)
        v_fast = cache.create_matview("t_fast", "t", ["a", "b"], region="fast")
        v_slow = cache.create_matview("t_slow", "t", ["a", "b"], region="slow")
        cache.run_for(16.5)
        # fast last woke at t=16 (cutoff 15); slow at t=16 (cutoff 12).
        assert v_fast.snapshot_time == pytest.approx(15.0)
        assert v_slow.snapshot_time == pytest.approx(12.0)
        # A bound of 3s is only satisfiable by the fast region right now.
        result = cache.execute("SELECT x.a FROM t x CURRENCY BOUND 3 SEC ON (x)")
        assert result.context.branches[0][0] == "t_fast"
        assert result.context.branches[0][1] == 0

    def test_view_choice_respects_region_freshness_costs(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (a INT NOT NULL, b INT NOT NULL, PRIMARY KEY (a))"
        )
        rows = ", ".join(f"({i}, {i})" for i in range(1, 101))
        backend.execute(f"INSERT INTO t VALUES {rows}")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("fast", 4.0, 1.0, heartbeat_interval=0.5)
        cache.create_region("slow", 40.0, 5.0, heartbeat_interval=2.0)
        cache.create_matview("t_fast", "t", ["a", "b"], region="fast")
        cache.create_matview("t_slow", "t", ["a", "b"], region="slow")
        cache.run_for(41.0)
        # With a 6-second bound, the fast region's guard passes with
        # p = 1 while the slow region's p = (6-5)/40: the optimizer must
        # prefer the fast view purely through the cost model.
        plan = cache.optimize("SELECT x.a FROM t x CURRENCY BOUND 6 SEC ON (x)",
                              use_cache=False)
        assert "t_fast" in plan.summary()


class TestDefaultSemanticsPreserved:
    """The paper's §3.2.1 promise: queries without a currency clause keep
    their traditional (always-current) semantics no matter what replicas
    exist."""

    def test_plain_queries_always_current(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (a INT NOT NULL, b INT NOT NULL, PRIMARY KEY (a))"
        )
        backend.execute("INSERT INTO t VALUES (1, 1)")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("r", 60.0, 1.0, heartbeat_interval=1.0)
        cache.create_matview("t_copy", "t", ["a", "b"], region="r")
        cache.run_for(61.0)
        for i in range(2, 6):
            cache.execute(f"INSERT INTO t VALUES ({i}, {i})")
            result = cache.execute("SELECT x.a FROM t x WHERE x.a = %d" % i)
            assert result.rows == [(i,)], "uncommitted-visibility broke"

    def test_explicit_zero_bound_equivalent_to_no_clause(self):
        backend = BackendServer()
        backend.create_table("CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a))")
        backend.execute("INSERT INTO t VALUES (1)")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("r", 10.0, 1.0)
        cache.create_matview("t_copy", "t", ["a"], region="r")
        cache.run_for(11.0)
        plain = cache.optimize("SELECT x.a FROM t x", use_cache=False)
        zero = cache.optimize(
            "SELECT x.a FROM t x CURRENCY BOUND 0 SEC ON (x)", use_cache=False
        )
        assert plain.summary() == zero.summary() == "remote"
