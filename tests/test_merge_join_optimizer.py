"""Tests for sort-property tracking and merge-join generation."""

import pytest

from repro.cache.backend import BackendServer
from repro.optimizer.optimizer import _align_merge_keys
from repro.sql import ast


def ref(qualifier, name):
    return ast.ColumnRef(name, qualifier=qualifier)


class TestAlignMergeKeys:
    def test_single_key_aligned(self):
        out = _align_merge_keys(
            [("l", "k")], [("r", "k")], [ref("l", "k")], [ref("r", "k")]
        )
        assert out is not None
        left, right = out
        assert left[0].name == "k" and right[0].name == "k"

    def test_key_not_in_sort_order(self):
        assert (
            _align_merge_keys([("l", "other")], [("r", "k")], [ref("l", "k")], [ref("r", "k")])
            is None
        )

    def test_right_side_misaligned(self):
        assert (
            _align_merge_keys(
                [("l", "a"), ("l", "b")],
                [("r", "b"), ("r", "a")],
                [ref("l", "a"), ref("l", "b")],
                [ref("r", "a"), ref("r", "b")],
            )
            is None
        )

    def test_two_keys_aligned_any_conjunct_order(self):
        out = _align_merge_keys(
            [("l", "a"), ("l", "b")],
            [("r", "a"), ("r", "b")],
            [ref("l", "b"), ref("l", "a")],
            [ref("r", "b"), ref("r", "a")],
        )
        assert out is not None
        left, right = out
        assert [r.name for r in left] == ["a", "b"]

    def test_empty_refs(self):
        assert _align_merge_keys([("l", "a")], [("r", "a")], [], []) is None

    def test_partial_prefix_rejected(self):
        # Only one of the two join keys is covered by the sort order.
        assert (
            _align_merge_keys(
                [("l", "a")],
                [("r", "a")],
                [ref("l", "a"), ref("l", "b")],
                [ref("r", "a"), ref("r", "b")],
            )
            is None
        )


@pytest.fixture()
def server():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE big1 (k INT NOT NULL, v FLOAT NOT NULL, PRIMARY KEY (k))"
    )
    backend.create_table(
        "CREATE TABLE big2 (k INT NOT NULL, w FLOAT NOT NULL, PRIMARY KEY (k))"
    )
    rows1 = ", ".join(f"({i}, {float(i)})" for i in range(1, 801))
    rows2 = ", ".join(f"({i}, {float(-i)})" for i in range(1, 801))
    backend.execute(f"INSERT INTO big1 VALUES {rows1}")
    backend.execute(f"INSERT INTO big2 VALUES {rows2}")
    backend.refresh_statistics()
    return backend


class TestMergeJoinChosen:
    def test_full_pk_join_uses_merge(self, server):
        # Both sides clustered on the join key and unfiltered: the ordered
        # scans + merge join beat build+probe hashing.
        plan = server.optimize("SELECT a.v, b.w FROM big1 a, big2 b WHERE a.k = b.k")
        assert "MergeJoin" in plan.explain(), plan.explain()

    def test_merge_join_result_correct(self, server):
        result = server.execute(
            "SELECT a.k, a.v, b.w FROM big1 a, big2 b WHERE a.k = b.k"
        )
        assert len(result.rows) == 800
        for k, v, w in result.rows:
            assert v == float(k)
            assert w == float(-k)

    def test_matches_hash_join_semantics(self, server):
        # Compare against a forced non-merge execution by disturbing the
        # order: a selective index path keeps hash join competitive.
        sql = "SELECT a.k FROM big1 a, big2 b WHERE a.k = b.k AND a.v < 50"
        result = server.execute(sql)
        assert sorted(r[0] for r in result.rows) == list(range(1, 50))

    def test_ordered_scan_costlier_than_heap_scan(self, server):
        from repro.optimizer.query_info import analyze_select
        from repro.sql.parser import parse

        info = analyze_select(parse("SELECT a.v FROM big1 a"), server.catalog)
        candidates = server.placement.access_candidates(info.operand("a"), info)
        by_kind = {c.kind: c for c in candidates}
        assert "base-ordered" in by_kind
        assert by_kind["base-ordered"].cost > by_kind["base-seq"].cost
        assert by_kind["base-ordered"].sort_order == (("a", "k"),)

    def test_secondary_index_delivers_sort(self, server):
        server.execute("CREATE INDEX ix_v ON big1 (v)")
        from repro.optimizer.query_info import analyze_select
        from repro.sql.parser import parse

        info = analyze_select(parse("SELECT a.k FROM big1 a WHERE a.v > 700"), server.catalog)
        candidates = server.placement.access_candidates(info.operand("a"), info)
        index_candidates = [c for c in candidates if c.kind == "base-index"]
        assert any(c.sort_order == (("a", "v"),) for c in index_candidates)
