"""Tests for shard replicas, primary failover and degraded reads.

Covers the log-shipping :class:`~repro.shard.ShardReplica` (whole
transactions replayed, prefix-consistent log copy, checkpoint resume),
crash fencing and the heartbeat failure detector's deterministic
promotion, durable-log *pending* vs volatile-log *lost* promotion
tails, recovery helpers, topology reporting through ``status()`` and
the ``\\fleet`` shell command, fleet-level failover with agent
re-binding, the seeded retry-backoff and restart-deferral-epsilon
satellites, and certification across promotion (monotonic series reset
on shard-epoch bumps and nothing else; a planted lost tail flags the
delta check).
"""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.chaos import ChaosScheduler
from repro.chaos.env import build_demo_fleet, build_ledger_fleet
from repro.cli import run_script
from repro.common.errors import ExecutionError
from repro.fleet import CacheFleet
from repro.history import ConsistencyCertifier, History
from repro.shard import ShardedBackend

DDL = (
    "CREATE TABLE inv (id INT NOT NULL, qty INT NOT NULL, "
    "PRIMARY KEY (id))"
)


def make_backend(replicas=1, n=24, **kwargs):
    backend = ShardedBackend(2, replicas=replicas, **kwargs)
    backend.create_table(DDL)
    values = ", ".join(f"({i}, {i % 7})" for i in range(n))
    # One multi-row INSERT = one transaction with n ops: replay must
    # apply every op, not just the first of each transaction.
    backend.execute(f"INSERT INTO inv VALUES {values}")
    backend.refresh_statistics()
    return backend


def rows_of(server, table="inv"):
    return sorted(
        tuple(v) for _, v in server.catalog.table(table).table.scan()
    )


def key_on_shard(backend, shard, start=0):
    for key in range(start, start + 1000):
        if backend.shard_of("inv", key) == shard:
            return key
    raise AssertionError(f"no key hashes to shard {shard}")


# ----------------------------------------------------------------------
# Log-shipping replicas
# ----------------------------------------------------------------------
class TestReplicaTailing:
    def test_replicas_apply_whole_transactions(self):
        backend = make_backend()
        backend.scheduler.run_for(1.0)
        for shard, standbys in backend.replicas.items():
            primary = backend.partitions[shard]
            for replica in standbys:
                assert rows_of(replica.server) == rows_of(primary)
                assert replica.lag_behind(primary.txn_manager.log) == 0

    def test_replica_log_is_prefix_consistent_copy(self):
        backend = make_backend()
        backend.execute("UPDATE inv SET qty = qty + 1 WHERE id < 5")
        backend.execute("DELETE FROM inv WHERE id >= 20")
        backend.scheduler.run_for(1.0)
        for shard, standbys in backend.replicas.items():
            primary_log = backend.partitions[shard].txn_manager.log.records
            for replica in standbys:
                copy = replica.server.txn_manager.log.records
                assert [(r.txn_id, r.commit_time, r.table, r.op, r.pk)
                        for r in copy] == \
                       [(r.txn_id, r.commit_time, r.table, r.op, r.pk)
                        for r in primary_log[:len(copy)]]

    def test_checkpoint_saved_and_resumed(self):
        backend = make_backend()
        backend.scheduler.run_for(1.0)
        replica = backend.replicas[0][0]
        assert replica.applied_txn > 0
        checkpoint = backend.replica_checkpoints.load(replica.checkpoint_key)
        assert checkpoint.applied_txn == replica.applied_txn
        # A restarted replica process adopts the durable position.
        applied, snapshot = replica.applied_txn, replica.snapshot_time
        replica.applied_txn = 0
        replica.snapshot_time = 0.0
        restored = replica.resume_from_checkpoint()
        assert restored is checkpoint
        assert (replica.applied_txn, replica.snapshot_time) == \
               (applied, snapshot)


# ----------------------------------------------------------------------
# Fencing + failure detection
# ----------------------------------------------------------------------
class TestCrashAndDetection:
    def test_crash_fences_only_that_shard(self):
        backend = make_backend()
        backend.scheduler.run_for(1.0)
        down, live = 0, 1
        backend.crash_primary(down)
        assert backend.shard_is_down(down)
        assert not backend.shards_available((down,))
        assert backend.shards_available((live,))
        k_down = key_on_shard(backend, down)
        k_live = key_on_shard(backend, live)
        with pytest.raises(ExecutionError, match="no live primary"):
            backend.execute(
                f"SELECT i.id, i.qty FROM inv i WHERE i.id = {k_down}"
            )
        with pytest.raises(ExecutionError, match="no live primary"):
            backend.execute(f"DELETE FROM inv WHERE id = {k_down}")
        result = backend.execute(
            f"SELECT i.id, i.qty FROM inv i WHERE i.id = {k_live}"
        )
        assert len(result.rows) == 1
        with pytest.raises(ExecutionError, match="already down"):
            backend.crash_primary(down)
        topo = backend.describe_topology()["shards"]
        assert topo[down]["primary"] == "down"
        assert topo[live]["primary"] == "up"

    def test_promote_requires_fenced_primary(self):
        backend = make_backend()
        with pytest.raises(ExecutionError, match="nothing to promote"):
            backend.promote_shard(0)

    def test_detector_promotion_is_deterministic(self):
        times = []
        for _ in range(2):
            backend = make_backend()
            backend.scheduler.run_until(3.0)
            backend.crash_primary(1)
            backend.scheduler.run_until(10.0)
            assert not backend.shard_is_down(1)
            assert len(backend.promotions) == 1
            promo = backend.promotions[0]
            assert promo["reason"] == "heartbeat-silence"
            assert promo["epoch"] == 1
            times.append(promo["time"])
            assert backend.detector.detections == [(1, promo["time"],
                                                    promo["time"] - 3.0)]
        assert times[0] == times[1]

    def test_promoted_shard_preserves_data_and_serves(self):
        backend = make_backend()
        backend.scheduler.run_for(1.0)
        before = rows_of(backend.partitions[1])
        backend.crash_primary(1)
        backend.scheduler.run_for(5.0)
        assert rows_of(backend.partitions[1]) == before
        k = key_on_shard(backend, 1)
        assert backend.execute(
            f"SELECT i.id, i.qty FROM inv i WHERE i.id = {k}"
        ).rows
        # The promoted copy accepts writes with continued txn ids.
        backend.execute(f"UPDATE inv SET qty = 99 WHERE id = {k}")
        assert (k, 99) in rows_of(backend.partitions[1])


# ----------------------------------------------------------------------
# Promotion tails: durable pending vs volatile lost
# ----------------------------------------------------------------------
class TestPromotionTails:
    def test_durable_log_replays_tail_as_pending(self):
        # Huge ship interval: the standby never tails, so the whole
        # history is an unreplicated tail at promotion time.
        backend = make_backend(replica_interval=100.0)
        old_rows = rows_of(backend.partitions[0])
        backend.crash_primary(0)
        info = backend.promote_shard(0)
        assert info["lost"] == []
        assert info["pending"], "the unreplicated tail must surface"
        assert rows_of(backend.partitions[0]) == old_rows
        assert backend.lost_commits == {}

    def test_volatile_log_surfaces_lost_commits(self):
        backend = make_backend(durable_log=False)
        backend.scheduler.run_for(1.0)  # standbys catch up
        replicated = rows_of(backend.partitions[0])
        k = key_on_shard(backend, 0, start=1000)
        backend.execute(f"INSERT INTO inv VALUES ({k}, 1)")  # never ships
        backend.crash_primary(0)
        info = backend.promote_shard(0)
        assert info["pending"] == []
        assert len(info["lost"]) == 1
        assert backend.lost_commits[0] == info["lost"]
        assert rows_of(backend.partitions[0]) == replicated

    def test_promotion_bumps_epochs_and_rearms_heartbeats(self):
        backend = make_backend()
        backend.heartbeats.register_region("r", beat_interval=0.5)
        backend.scheduler.run_for(1.0)
        coordinator_epoch = backend.ddl_epoch
        backend.crash_primary(0)
        backend.promote_shard(0)
        assert backend.shard_epochs == [1, 0]
        assert backend.ddl_epoch > coordinator_epoch
        beat = backend.last_heartbeat(0)
        backend.scheduler.run_for(2.0)
        assert backend.last_heartbeat(0) > beat, "beats re-armed"


# ----------------------------------------------------------------------
# Recovery helpers
# ----------------------------------------------------------------------
class TestRecoveryHelpers:
    def test_ensure_primaries_promotes_fenced_shards(self):
        backend = make_backend()
        backend.scheduler.run_for(1.0)
        backend.crash_primary(0)
        restored = backend.ensure_primaries()
        assert [info["shard"] for info in restored] == [0]
        assert restored[0]["reason"] == "recovery"
        assert backend.shards_available()

    def test_ensure_primaries_revives_replica_less_shard_in_place(self):
        backend = make_backend(replicas=0)
        server = backend.partitions[0]
        backend.crash_primary(0)
        assert backend.ensure_primaries() == []
        assert backend.shards_available()
        assert backend.partitions[0] is server
        assert backend.shard_epochs == [0, 0]

    def test_catchup_replicas_ships_to_tail(self):
        backend = make_backend(replica_interval=100.0)
        assert backend.catchup_replicas() > 0
        for shard, standbys in backend.replicas.items():
            for replica in standbys:
                assert rows_of(replica.server) == \
                       rows_of(backend.partitions[shard])


# ----------------------------------------------------------------------
# Fleet-level failover
# ----------------------------------------------------------------------
class TestFleetFailover:
    def test_ledger_workload_rides_out_promotion(self):
        fleet, workload = build_ledger_fleet(
            partitions=2, replicas=1, record_history=True,
        )
        chaos = ChaosScheduler(fleet, seed=7)
        chaos.backend_crash(1, 10.0)
        report = chaos.run(30.0, workload=workload)
        assert report.violations == []
        promotions = report.promotions()
        assert len(promotions) == 1
        shard, _, _, latency, epoch = promotions[0]
        assert (shard, epoch) == (1, 1)
        assert latency > 0
        assert report.served_fraction() >= 0.99
        assert report.summary()["certification"]["anomalies"] == 0

    def test_promotion_rebinds_shard_agents(self):
        fleet = build_demo_fleet(partitions=2, replicas=1)
        backend = fleet.backend
        backend.crash_primary(0)
        fleet.run_for(5.0)  # detector fires at ~1.75s
        assert not backend.shard_is_down(0)
        new_log = backend.partitions[0].txn_manager.log
        rebound = 0
        for node in fleet.nodes:
            for agent in node.agents.values():
                if getattr(agent, "shard_id", None) == 0:
                    assert agent.log is new_log
                    rebound += 1
        assert rebound >= 1

    def test_relaxed_reads_degrade_during_failover_window(self):
        fleet = build_demo_fleet(partitions=2, replicas=1)
        backend = fleet.backend
        key = next(k for k in range(400)
                   if backend.shard_of("profile", k) == 0)
        backend.crash_primary(0)
        fleet.run_for(1.2)  # inside the window: the detector needs 1.5 s
        assert backend.shard_is_down(0)
        result = fleet.execute(
            f"SELECT p.id, p.score FROM profile p WHERE p.id = {key} "
            "CURRENCY BOUND 1 SEC ON (p)"
        )
        assert result.rows
        assert result.warnings and "failover" in result.warnings[0]
        snap = fleet.metrics.snapshot()
        assert any(k.startswith("fleet_failover_degraded_total")
                   for k in snap)

    def test_strict_reads_ride_out_the_promotion(self):
        fleet = build_demo_fleet(partitions=2, replicas=1)
        fleet.declare_table_consistency("profile", "strict")
        backend = fleet.backend
        key = next(k for k in range(400)
                   if backend.shard_of("profile", k) == 0)
        backend.crash_primary(0)
        fleet.run_for(1.2)
        assert backend.shard_is_down(0)
        result = fleet.execute(
            f"SELECT p.id, p.score FROM profile p WHERE p.id = {key} "
            "CURRENCY BOUND 1 SEC ON (p)"
        )
        # The strict read blocked through the promotion instead of
        # serving stale: fresh rows, no degraded warning, and the
        # promotion completed while the call was riding it out.
        assert result.rows and not result.warnings
        assert not backend.shard_is_down(0)
        assert len(backend.promotions) == 1
        snap = fleet.metrics.snapshot()
        assert any(k.startswith("fleet_failover_blocked_total")
                   for k in snap)

    def test_status_and_shell_show_shard_roles(self):
        fleet = build_demo_fleet(partitions=2, replicas=1)
        fleet.backend.crash_primary(1)
        shards = fleet.status()["backend"]["shards"]
        assert [s["primary"] for s in shards] == ["up", "down"]
        out = io.StringIO()
        run_script(fleet, ["\\fleet"], out=out)
        text = out.getvalue()
        assert "p0: primary=UP epoch=0" in text
        assert "p1: primary=DOWN" in text
        assert "r0 applied=" in text


# ----------------------------------------------------------------------
# Satellite: capped, seeded exponential retry backoff
# ----------------------------------------------------------------------
REMOTE_ONLY = "SELECT t.id, t.v FROM t CURRENCY BOUND 0 SEC ON (t)"


def make_outage_fleet():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    backend.refresh_statistics()
    fleet = CacheFleet(backend, n_nodes=2, reset_timeout=0.5)
    fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    fleet.create_matview("t_copy", "t", ["id", "v"], region="r")
    fleet.run_for(6.0)
    return fleet


class TestSeededBackoff:
    def test_backoff_is_deterministic_and_metered(self):
        finished, backoffs = [], []
        for _ in range(2):
            fleet = make_outage_fleet()
            fleet.network.inject_outage(2.0)
            result = fleet.execute(REMOTE_ONLY)
            assert len(result.rows) == 2
            finished.append(fleet.clock.now())
            snap = fleet.metrics.snapshot()
            slept = [v for k, v in snap.items()
                     if k.startswith("fleet_remote_backoff_seconds_total")]
            assert slept and sum(slept) > 0
            backoffs.append(slept)
            assert any(k.startswith("fleet_remote_retries_total")
                       for k in snap)
        assert finished[0] == finished[1]
        assert backoffs[0] == backoffs[1]

    def test_jitter_differs_per_node_but_stays_bounded(self):
        fleet = make_outage_fleet()
        sequences = {
            node.name: [node._backoff_rng.random() for _ in range(8)]
            for node in fleet.nodes
        }
        assert sequences["node0"] != sequences["node1"]
        node = fleet.nodes[0]
        # The capped schedule: delay <= cap for any attempt.
        for attempt in range(1, 12):
            delay = min(node.retry_backoff_cap,
                        node.retry_backoff * (2.0 ** (attempt - 1)))
            assert delay <= node.retry_backoff_cap


# ----------------------------------------------------------------------
# Satellite: configurable restart-deferral epsilon
# ----------------------------------------------------------------------
class TestRestartDeferralEpsilon:
    def test_default_epsilon_is_the_module_constant(self):
        fleet = make_outage_fleet()
        assert fleet.nodes[0].restart_defer_epsilon == 1e-3

    def test_configured_epsilon_shapes_retry_and_slo_report(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, "
            "PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1, 10)")
        backend.refresh_statistics()
        fleet = CacheFleet(backend, n_nodes=1, restart_defer_epsilon=0.05)
        fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
        fleet.create_matview("t_copy", "t", ["id", "v"], region="r")
        fleet.run_for(6.0)
        node = fleet.nodes[0]
        assert node.restart_defer_epsilon == 0.05
        node.crash()
        now = fleet.clock.now()
        fleet.network.inject_outage(2.0)
        node.restart()
        assert len(node.restart_deferrals) == 1
        deferral = node.restart_deferrals[0]
        assert deferral["retry_at"] == pytest.approx(now + 2.0 + 0.05)
        report = fleet.slo_report()
        assert report["deferred_restarts"]["node0"] == [deferral]
        fleet.run_for(2.0 + 0.05 + node.warmup_seconds + 0.5)
        assert node.accepting


# ----------------------------------------------------------------------
# Certification across promotion
# ----------------------------------------------------------------------
def _query_record(qid, *, time, snapshots, session=None, reads=None,
                  classes=None):
    return {
        "kind": "query", "qid": qid, "node": "cache", "time": time,
        "sql": "SELECT 1", "bound": None,
        "classes": classes or [], "routing": "local",
        "snapshots": snapshots, "reads": reads or [], "branches": [],
        "warnings": 0, "remote_queries": 0, "session": session,
        "floors": None, "rows": 1,
    }


def _promotion_event(shard, time):
    return {
        "kind": "event", "event": "promotion", "severity": "warning",
        "message": f"shard p{shard} promoted", "time": time,
        "attrs": {"shard": shard, "epoch": 1},
    }


def _regress_pair(shard):
    read = {"view": "v", "table": "t", "region": "r", "shard": shard,
            "strict": False, "sources": {"backend": 3}}
    return [
        _query_record(1, time=1.0, snapshots=[10.0], session="s",
                      reads=[dict(read, snapshot=10.0)]),
        _query_record(2, time=2.0, snapshots=[5.0], session="s",
                      reads=[dict(read, snapshot=5.0)]),
    ]


def _kinds(history):
    return {a.check for a in ConsistencyCertifier(history).certify().anomalies}


class TestCertificationAcrossPromotion:
    def test_monotonic_series_reset_on_shard_epoch_bump_only(self):
        first, second = _regress_pair(shard=0)
        # Bare regression on a pinned series: an anomaly.
        assert _kinds(History([first, second])) == {"monotonic_reads"}
        # A promotion of *that* shard between the reads resets the
        # series: the promoted standby is a different physical copy.
        excused = History([first, _promotion_event(0, 1.5), second])
        report = ConsistencyCertifier(excused).certify()
        assert report.certificate("monotonic_reads").ok
        assert report.certificate("monotonic_reads").details[
            "shard_promotions"] == 1
        # A promotion of a *different* shard excuses nothing...
        assert _kinds(History([first, _promotion_event(1, 1.5), second])) \
            == {"monotonic_reads"}
        # ...and a crash without promotion excuses nothing either.
        crash = {
            "kind": "event", "event": "backend_crash", "severity": "error",
            "message": "shard p0 primary crashed", "time": 1.5,
            "attrs": {"shard": 0, "epoch": 0},
        }
        assert _kinds(History([first, crash, second])) == {"monotonic_reads"}

    def test_unpinned_series_reset_on_any_promotion(self):
        first, second = _regress_pair(shard=None)
        assert _kinds(History([first, second])) == {"monotonic_reads"}
        # An unpinned read touches every shard: any promotion resets it.
        assert _kinds(History([first, _promotion_event(1, 1.5), second])) \
            == set()

    def test_planted_lost_tail_flags_exactly_the_delta_check(self):
        # After a volatile-log promotion the promoted copy's applied-txn
        # point sits behind its sibling's — Δ-consistency must flag that
        # (and nothing else: the promotion itself resets the monotonic
        # series, so the lost tail is caught by the right check).
        reads = [
            {"view": "a_copy", "table": "t", "region": "r", "shard": 1,
             "strict": False, "snapshot": 4.0, "sources": {"p1": 5}},
            {"view": "b_copy", "table": "t", "region": "r", "shard": 1,
             "strict": False, "snapshot": 4.0, "sources": {"p1": 3}},
        ]
        history = History([
            _promotion_event(1, 3.0),
            _query_record(1, time=4.0, snapshots=[4.0], session="s",
                          reads=reads, classes=[["t"]]),
        ])
        report = ConsistencyCertifier(history).certify()
        assert {a.check for a in report.anomalies} == {"delta_consistency"}
        (anomaly,) = report.anomalies
        assert anomaly.attrs["delta"] == 2
