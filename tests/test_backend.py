"""Tests for the back-end server: DDL, DML, SELECT paths, subqueries."""

import pytest

from repro.cache.backend import BackendServer
from repro.common.errors import ExecutionError


@pytest.fixture()
def server():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE dept (did INT NOT NULL, dname VARCHAR(20) NOT NULL, PRIMARY KEY (did))"
    )
    backend.create_table(
        "CREATE TABLE emp (eid INT NOT NULL, did INT NOT NULL, salary FLOAT NOT NULL, "
        "PRIMARY KEY (eid))"
    )
    backend.create_index("CREATE INDEX idx_emp_did ON emp (did)")
    backend.execute("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')")
    backend.execute(
        "INSERT INTO emp VALUES (1, 1, 100.0), (2, 1, 120.0), (3, 2, 90.0), (4, 2, 95.0)"
    )
    backend.refresh_statistics()
    return backend


class TestDDL:
    def test_create_table_registers_for_txns(self, server):
        server.execute("INSERT INTO dept VALUES (9, 'x')")
        assert server.catalog.table("dept").table.row_count == 4

    def test_create_index_via_execute(self, server):
        server.execute("CREATE INDEX idx_salary ON emp (salary)")
        assert server.catalog.table("emp").table.index_on(["salary"]) is not None


class TestDML:
    def test_insert_returns_count(self, server):
        assert server.execute("INSERT INTO dept VALUES (4, 'hr'), (5, 'it')") == 2

    def test_insert_with_column_subset(self, server):
        server.create_table(
            "CREATE TABLE opt (id INT NOT NULL, note VARCHAR(5), PRIMARY KEY (id))"
        )
        server.execute("INSERT INTO opt (id) VALUES (1)")
        assert server.execute("SELECT o.note FROM opt o").rows == [(None,)]

    def test_insert_arity_mismatch(self, server):
        with pytest.raises(ExecutionError):
            server.execute("INSERT INTO dept (did) VALUES (1, 'x')")

    def test_update_with_expression(self, server):
        n = server.execute("UPDATE emp SET salary = salary * 2 WHERE did = 1")
        assert n == 2
        rows = server.execute("SELECT e.salary FROM emp e WHERE e.did = 1").rows
        assert sorted(r[0] for r in rows) == [200.0, 240.0]

    def test_update_all_rows(self, server):
        assert server.execute("UPDATE emp SET salary = 1.0") == 4

    def test_delete_with_where(self, server):
        assert server.execute("DELETE FROM emp WHERE salary < 100") == 2
        assert server.execute("SELECT COUNT(*) AS n FROM emp e").scalar() == 2

    def test_dml_goes_through_txn_log(self, server):
        before = len(server.txn_manager.log)
        server.execute("INSERT INTO dept VALUES (9, 'x')")
        server.execute("UPDATE dept SET dname = 'y' WHERE did = 9")
        server.execute("DELETE FROM dept WHERE did = 9")
        assert len(server.txn_manager.log) == before + 3


class TestSelect:
    def test_projection(self, server):
        result = server.execute("SELECT d.dname FROM dept d ORDER BY d.dname")
        assert result.rows == [("empty",), ("eng",), ("sales",)]

    def test_star(self, server):
        result = server.execute("SELECT * FROM dept WHERE did = 1")
        assert result.rows == [(1, "eng")]

    def test_filter_with_expression(self, server):
        result = server.execute("SELECT e.eid FROM emp e WHERE e.salary + 10 > 105")
        assert sorted(r[0] for r in result.rows) == [1, 2]

    def test_join(self, server):
        result = server.execute(
            "SELECT d.dname, e.salary FROM dept d, emp e WHERE d.did = e.did "
            "ORDER BY e.salary"
        )
        assert result.rows[0] == ("sales", 90.0)
        assert len(result.rows) == 4

    def test_join_with_join_syntax(self, server):
        result = server.execute(
            "SELECT d.dname FROM dept d JOIN emp e ON d.did = e.did WHERE e.eid = 1"
        )
        assert result.rows == [("eng",)]

    def test_aggregation(self, server):
        result = server.execute(
            "SELECT e.did, COUNT(*) AS n, SUM(e.salary) AS total FROM emp e "
            "GROUP BY e.did ORDER BY e.did"
        )
        assert result.rows == [(1, 2, 220.0), (2, 2, 185.0)]

    def test_scalar_aggregates(self, server):
        result = server.execute(
            "SELECT COUNT(*) AS n, MIN(e.salary) AS lo, MAX(e.salary) AS hi, "
            "AVG(e.salary) AS mean FROM emp e"
        )
        assert result.rows == [(4, 90.0, 120.0, 101.25)]

    def test_having(self, server):
        result = server.execute(
            "SELECT e.did, COUNT(*) AS n FROM emp e GROUP BY e.did HAVING n > 1"
        )
        assert len(result.rows) == 2

    def test_distinct(self, server):
        result = server.execute("SELECT DISTINCT e.did FROM emp e")
        assert sorted(r[0] for r in result.rows) == [1, 2]

    def test_limit(self, server):
        result = server.execute("SELECT e.eid FROM emp e ORDER BY e.eid LIMIT 2")
        assert result.rows == [(1,), (2,)]

    def test_order_desc(self, server):
        result = server.execute("SELECT e.salary FROM emp e ORDER BY e.salary DESC")
        assert result.rows[0] == (120.0,)

    def test_order_by_non_selected_column(self, server):
        # Standard SQL: the sort key need not be in the select list; the
        # sort runs below the projection.
        result = server.execute("SELECT e.eid FROM emp e ORDER BY e.salary DESC")
        assert result.rows == [(2,), (1,), (4,), (3,)]

    def test_order_by_mixed_alias_and_hidden_column_rejected(self, server):
        from repro.common.errors import OptimizerError

        with pytest.raises(OptimizerError):
            server.execute(
                "SELECT e.eid AS k FROM emp e ORDER BY k, e.salary"
            )

    def test_getdate_in_select(self, server):
        server.clock.advance(50.0)
        result = server.execute("SELECT GETDATE() AS now FROM dept d LIMIT 1")
        assert result.scalar() == 50.0

    def test_cartesian_product(self, server):
        result = server.execute("SELECT d.did, e.eid FROM dept d, emp e")
        assert len(result.rows) == 12

    def test_residual_non_equijoin(self, server):
        result = server.execute(
            "SELECT d.did, e.eid FROM dept d, emp e WHERE d.did < e.did"
        )
        assert sorted(result.rows) == [(1, 3), (1, 4)]


class TestSubqueries:
    def test_uncorrelated_exists(self, server):
        result = server.execute(
            "SELECT d.dname FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.salary > 110)"
        )
        assert len(result.rows) == 3  # subquery true for all

    def test_correlated_exists(self, server):
        result = server.execute(
            "SELECT d.dname FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.did = d.did) ORDER BY d.dname"
        )
        assert result.rows == [("eng",), ("sales",)]

    def test_not_exists(self, server):
        result = server.execute(
            "SELECT d.dname FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.did = d.did)"
        )
        assert result.rows == [("empty",)]

    def test_in_subquery(self, server):
        result = server.execute(
            "SELECT d.dname FROM dept d WHERE d.did IN "
            "(SELECT e.did FROM emp e WHERE e.salary > 100) "
        )
        assert result.rows == [("eng",)]

    def test_derived_table(self, server):
        result = server.execute(
            "SELECT t.total FROM (SELECT e.did AS did, SUM(e.salary) AS total "
            "FROM emp e GROUP BY e.did) t WHERE t.did = 1"
        )
        assert result.rows == [(220.0,)]

    def test_derived_table_join(self, server):
        result = server.execute(
            "SELECT d.dname, t.n FROM dept d, (SELECT e.did AS did, COUNT(*) AS n "
            "FROM emp e GROUP BY e.did) t WHERE d.did = t.did ORDER BY d.dname"
        )
        assert result.rows == [("eng", 2), ("sales", 2)]


class TestEstimates:
    def test_estimate_returns_triple(self, server):
        cost, rows, width = server.estimate("SELECT e.eid FROM emp e")
        assert cost > 0
        assert rows == pytest.approx(4, abs=1)
        assert width > 0

    def test_estimate_selective_cheaper_on_big_table(self, server):
        big = _make_big_table(server)
        cost_all, _, _ = server.estimate(f"SELECT b.v FROM {big} b")
        cost_one, _, _ = server.estimate(f"SELECT b.v FROM {big} b WHERE b.id = 1")
        assert cost_one < cost_all

    def test_execute_remote_returns_rows(self, server):
        rows = server.execute_remote("SELECT d.did FROM dept d ORDER BY d.did")
        assert rows == [(1,), (2,), (3,)]


def _make_big_table(server, rows=500):
    """An auxiliary table big enough for index access to beat a scan."""
    if not server.catalog.has_table("big"):
        server.create_table(
            "CREATE TABLE big (id INT NOT NULL, v FLOAT NOT NULL, PRIMARY KEY (id))"
        )
        values = ", ".join(f"({i}, {float(i)})" for i in range(1, rows + 1))
        server.execute(f"INSERT INTO big VALUES {values}")
        server.refresh_statistics()
    return "big"


class TestOptimizerChoices:
    def test_point_query_uses_index(self, server):
        big = _make_big_table(server)
        plan = server.optimize(f"SELECT b.v FROM {big} b WHERE b.id = 2")
        assert "IndexSeek" in plan.explain() or "IndexRangeScan" in plan.explain()

    def test_unselective_uses_seq_scan(self, server):
        plan = server.optimize("SELECT e.salary FROM emp e")
        assert "SeqScan" in plan.explain()

    def test_join_plan_executes(self, server):
        plan = server.optimize(
            "SELECT d.dname, e.eid FROM dept d, emp e WHERE d.did = e.did"
        )
        assert plan.cost > 0
