"""Tests for repro.plan: snapshot round-trips, the fleet-shared store,
and explicit invalidation on DDL / region / topology changes."""

import json
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.fleet import CacheFleet
from repro.plan import (
    SNAPSHOT_VERSION,
    PlanSnapshotStore,
    SnapshotUnsupported,
    instantiate_snapshot,
    serialize_plan,
)


def make_backend(rows=40):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, w FLOAT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    values = ", ".join(f"({i}, {i % 7}, {float(i % 5)})" for i in range(1, rows + 1))
    backend.execute(f"INSERT INTO t VALUES {values}")
    backend.refresh_statistics()
    return backend


def make_cache(store=None, **kwargs):
    backend = make_backend()
    cache = MTCache(backend, snapshot_store=store, **kwargs)
    cache.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    cache.create_matview("t_copy", "t", ["id", "v", "w"], region="r")
    cache.run_for(6.0)
    return cache


def roundtrip(cache, sql):
    """optimize -> serialize -> json -> instantiate -> execute."""
    plan = cache.optimize(sql, use_cache=False)
    snapshot = json.loads(json.dumps(serialize_plan(plan, engine=cache.engine)))
    replay = instantiate_snapshot(snapshot, cache)
    return (
        cache._execute_plan(plan, sql_text=sql),
        cache._execute_plan(replay, sql_text=sql),
        snapshot,
    )


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("sql", [
        "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)",
        "SELECT t.id FROM t WHERE t.id = 7 CURRENCY BOUND 600 SEC ON (t)",
        "SELECT t.v, t.w FROM t WHERE t.v BETWEEN 2 AND 5 AND t.w > 1.0 "
        "CURRENCY BOUND 600 SEC ON (t)",
        "SELECT t.id FROM t WHERE t.v IN (1, 3, 5) CURRENCY BOUND 600 SEC ON (t)",
        "SELECT t.v, COUNT(*) AS n FROM t GROUP BY t.v CURRENCY BOUND 600 SEC ON (t)",
        "SELECT DISTINCT t.v FROM t CURRENCY BOUND 600 SEC ON (t)",
        "SELECT t.id FROM t ORDER BY t.id DESC LIMIT 5 CURRENCY BOUND 600 SEC ON (t)",
        "SELECT a.id, b.v FROM t a, t b WHERE a.id = b.id AND a.v < 4 "
        "CURRENCY BOUND 600 SEC ON (a, b)",
        # No currency clause: remote plan, still snapshot-able.
        "SELECT t.id, t.v FROM t WHERE t.id < 10",
    ])
    def test_rows_identical(self, sql):
        cache = make_cache()
        fresh, replay, snapshot = roundtrip(cache, sql)
        assert Counter(replay.rows) == Counter(fresh.rows), sql
        assert snapshot["version"] == SNAPSHOT_VERSION
        json.dumps(snapshot)  # stays JSON-compatible

    def test_guarded_plan_roundtrips_with_rebuilt_guard(self):
        cache = make_cache()
        sql = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
        fresh, replay, snapshot = roundtrip(cache, sql)
        assert replay.routing == fresh.routing == "local"
        ops = []
        def walk(node):
            ops.append(node["op"])
            for key in ("child", "left", "right", "outer", "inner"):
                if key in node:
                    walk(node[key])
            for child in node.get("inputs", ()):
                walk(child)
        walk(snapshot["root"])
        assert "SwitchUnion" in ops  # the guard itself travelled as params

    def test_subquery_plans_ship_whole_and_roundtrip(self):
        # Subqueries ship to the back-end wholesale; the resulting plan is
        # a single RemoteQuery — trivially snapshot-able by SQL text.
        cache = make_cache()
        sql = "SELECT t.id FROM t WHERE t.v IN (SELECT t.v FROM t WHERE t.id < 5)"
        fresh, replay, snapshot = roundtrip(cache, sql)
        assert snapshot["root"]["op"] == "RemoteQuery"
        assert Counter(replay.rows) == Counter(fresh.rows)

    def test_irless_predicate_is_unsupported(self):
        # A closure without IR (anything compile_expr cannot express in
        # the restricted vocabulary, e.g. a correlated subquery) cannot
        # travel; serialize must refuse, not silently drop the predicate.
        from repro.engine import operators as ops
        from repro.engine.expressions import OutputCol, RowBinding

        cache = make_cache()
        table = cache.catalog.matview("t_copy").table
        binding = RowBinding([OutputCol("id", "t")])
        scan = ops.SeqScan(table, binding, predicate=lambda env: True)

        class FakePlan:
            column_names = ["id"]
            cost = 1.0
            est_rows = 1.0

            def root(self):
                return scan

        with pytest.raises(SnapshotUnsupported):
            serialize_plan(FakePlan())

    def test_version_gate(self):
        cache = make_cache()
        plan = cache.optimize("SELECT t.id FROM t", use_cache=False)
        snapshot = serialize_plan(plan)
        snapshot["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotUnsupported):
            instantiate_snapshot(snapshot, cache)

    def test_missing_view_rejected_at_instantiation(self):
        publisher = make_cache()
        sql = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
        snapshot = serialize_plan(publisher.optimize(sql, use_cache=False))
        bare = MTCache(make_backend())  # no region, no view
        with pytest.raises(SnapshotUnsupported):
            instantiate_snapshot(snapshot, bare)

    def test_estimates_restamped(self):
        cache = make_cache()
        plan = cache.optimize("SELECT t.id FROM t WHERE t.v = 3", use_cache=False)
        replay = instantiate_snapshot(serialize_plan(plan), cache)
        assert replay.root().est_rows == plan.root().est_rows
        assert replay.cost == plan.cost
        assert replay.summary() == plan.summary()


PRED_OPS = ["<", "<=", "=", ">", ">=", "<>"]


class TestSnapshotRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        n_conjuncts=st.integers(min_value=1, max_value=3),
        currency=st.booleans(),
    )
    def test_random_predicates(self, shared_cache, data, n_conjuncts, currency):
        conjuncts = []
        for _ in range(n_conjuncts):
            column, values = data.draw(st.sampled_from([
                ("t.id", st.integers(min_value=-5, max_value=45)),
                ("t.v", st.integers(min_value=-1, max_value=8)),
                ("t.w", st.floats(min_value=-1.0, max_value=6.0,
                                  allow_nan=False, width=16)),
            ]))
            op = data.draw(st.sampled_from(PRED_OPS))
            value = data.draw(values)
            # Fixed-point rendering: the SQL lexer has no scientific notation.
            literal = f"{value:.3f}" if isinstance(value, float) else str(value)
            conjuncts.append(f"{column} {op} {literal}")
        sql = f"SELECT t.id, t.v, t.w FROM t WHERE {' AND '.join(conjuncts)}"
        if currency:
            sql += " CURRENCY BOUND 600 SEC ON (t)"
        fresh, replay, _ = roundtrip(shared_cache, sql)
        assert Counter(replay.rows) == Counter(fresh.rows), sql

    @pytest.fixture(scope="class")
    def shared_cache(self):
        return make_cache()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class TestPlanSnapshotStore:
    def test_publish_get(self):
        store = PlanSnapshotStore()
        store.publish("q", "fp", "columnar", {"x": 1}, epoch=3)
        assert store.get("q", "fp", "columnar", epoch=3) == {"x": 1}
        assert store.get("q", "other-fp", "columnar", epoch=3) is None
        assert store.get("q", "fp", "row", epoch=3) is None
        assert store.stats["hits"] == 1 and store.stats["misses"] == 2

    def test_epoch_mismatch_rejects_and_drops(self):
        store = PlanSnapshotStore()
        store.publish("q", "fp", "columnar", {"x": 1}, epoch=3)
        assert store.get("q", "fp", "columnar", epoch=4) is None
        assert store.stats["epoch_rejections"] == 1
        assert len(store) == 0

    def test_ttl_expiry_on_simulated_clock(self):
        backend = make_backend()
        store = PlanSnapshotStore(backend.clock, ttl=10.0)
        store.publish("q", "fp", "columnar", {"x": 1})
        assert store.get("q", "fp", "columnar") == {"x": 1}
        backend.run_for(11.0)
        assert store.get("q", "fp", "columnar") is None
        assert store.stats["expirations"] == 1

    def test_lru_capacity(self):
        store = PlanSnapshotStore(capacity=2)
        store.publish("a", "fp", "e", 1)
        store.publish("b", "fp", "e", 2)
        assert store.get("a", "fp", "e") == 1  # touch: a is now most recent
        store.publish("c", "fp", "e", 3)
        assert store.get("b", "fp", "e") is None  # b evicted, not a
        assert store.get("a", "fp", "e") == 1

    def test_invalidate(self):
        store = PlanSnapshotStore()
        store.publish("q", "fp", "e", 1)
        assert store.invalidate(reason="test") == 1
        assert len(store) == 0
        assert store.last_invalidation == "test"


# ----------------------------------------------------------------------
# MTCache integration: publish on miss, instantiate on probe, invalidate
# ----------------------------------------------------------------------
SQL = "SELECT t.id, t.v FROM t WHERE t.v = 3 CURRENCY BOUND 600 SEC ON (t)"


class TestMTCacheIntegration:
    def test_miss_publishes_then_probe_instantiates(self):
        store = PlanSnapshotStore()
        cache = make_cache(store=store)
        fresh = cache.execute(SQL)
        assert store.stats["publishes"] >= 1
        cache._plan_cache.clear()  # simulate a restart's cold plan cache
        replay = cache.execute(SQL)
        assert cache._plan_cache[SQL].kind == "snapshot"
        assert Counter(replay.rows) == Counter(fresh.rows)
        assert replay.routing == fresh.routing

    def test_backend_ddl_bumps_epoch_and_invalidates(self):
        store = PlanSnapshotStore()
        cache = make_cache(store=store)
        cache.execute(SQL)
        assert SQL in cache._plan_cache
        epoch_before = cache.backend.ddl_epoch
        cache.backend.create_index("CREATE INDEX ix_t_v ON t (v)")
        assert cache.backend.ddl_epoch == epoch_before + 1
        cache.execute(SQL)  # epoch check fires on the hot path
        assert cache._plans_ddl_epoch == cache.backend.ddl_epoch
        # The store was wiped with the plans; published snapshots from the
        # old epoch are gone.
        assert store.last_invalidation == "backend-ddl"

    def test_local_ddl_invalidates_store(self):
        store = PlanSnapshotStore()
        cache = make_cache(store=store)
        cache.execute(SQL)
        assert len(store) >= 1
        cache.create_view_index("t_copy", "ix_copy_v", ["v"])
        assert len(store) == 0

    def test_alter_region_invalidates_and_reprices(self):
        store = PlanSnapshotStore()
        cache = make_cache(store=store)
        cache.execute(SQL)
        fp_before = cache.config_fingerprint()
        region = cache.alter_region("r", update_interval=9.0, update_delay=2.5)
        assert region.update_interval == 9.0
        assert region.update_delay == 2.5
        assert len(store) == 0
        assert cache.config_fingerprint() != fp_before
        for agent in cache.region_agents("r"):
            assert agent._interval == 9.0

    def test_fingerprint_tracks_engine_and_policy(self):
        cache = make_cache()
        fp = cache.config_fingerprint()
        row = make_cache(batch_size=1)
        assert row.config_fingerprint() != fp
        cache.fallback_policy = "serve_stale"
        assert cache.config_fingerprint() != fp


# ----------------------------------------------------------------------
# Fleet sharing
# ----------------------------------------------------------------------
def make_fleet(n_nodes=2, **kwargs):
    backend = make_backend()
    fleet = CacheFleet(backend, n_nodes=n_nodes, **kwargs)
    fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    fleet.create_matview("t_copy", "t", ["id", "v", "w"], region="r")
    fleet.run_for(6.0)
    return fleet


class TestFleetSharing:
    def test_peer_instantiates_publishers_snapshot(self):
        fleet = make_fleet(policy="round_robin")
        node0, node1 = fleet.nodes
        assert node0.snapshot_store is node1.snapshot_store is fleet.snapshot_store
        # Node cids differ ("r@node0" vs "r@node1") but the fingerprint
        # normalizes them away: that is what makes sharing possible.
        assert node0.config_fingerprint() == node1.config_fingerprint()
        fresh = node0.execute(SQL)
        assert fleet.snapshot_store.stats["publishes"] >= 1
        replay = node1.execute(SQL)  # cold node: no parse, no optimize
        assert node1._plan_cache[SQL].kind == "snapshot"
        assert Counter(replay.rows) == Counter(fresh.rows)
        assert fleet.snapshot_store.stats["hits"] >= 1

    def test_fleet_ddl_invalidates_shared_store(self):
        fleet = make_fleet()
        fleet.nodes[0].execute(SQL)
        assert len(fleet.snapshot_store) >= 1
        fleet.create_region("r2", 8.0, 2.0)
        assert len(fleet.snapshot_store) == 0

    def test_topology_change_invalidates_shared_store(self):
        fleet = make_fleet()
        fleet.nodes[0].execute(SQL)
        assert len(fleet.snapshot_store) >= 1
        fleet.crash_node(fleet.nodes[1].name)
        assert len(fleet.snapshot_store) == 0
        assert fleet.snapshot_store.last_invalidation == "node-crash"
        # A fresh optimization (cold plan cache) republishes...
        fleet.nodes[0]._plan_cache.clear()
        fleet.nodes[0].execute(SQL)
        assert len(fleet.snapshot_store) >= 1
        # ...and the restart wipes again.
        fleet.restart_node(fleet.nodes[1].name)
        assert fleet.snapshot_store.last_invalidation == "node-restart"

    def test_fleet_alter_region_fans_out(self):
        fleet = make_fleet()
        altered = fleet.alter_region("r", update_interval=7.0)
        assert set(altered) == {n.name for n in fleet.nodes}
        for node in fleet.nodes:
            cid = fleet.regions["r"][node.name]
            assert node.catalog.region(cid).update_interval == 7.0
