"""Smoke tests for the public package surface: every documented export is
importable and the README quickstart actually works."""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.common",
    "repro.storage",
    "repro.txn",
    "repro.catalog",
    "repro.sql",
    "repro.cc",
    "repro.engine",
    "repro.optimizer",
    "repro.replication",
    "repro.cache",
    "repro.semantics",
    "repro.workloads",
    "repro.resultcache",
    "repro.fleet",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import BackendServer, MTCache

        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE products (pid INT NOT NULL, name VARCHAR(30) NOT NULL, "
            "price FLOAT NOT NULL, PRIMARY KEY (pid))"
        )
        backend.execute("INSERT INTO products VALUES (1, 'widget', 9.99)")
        backend.refresh_statistics()

        cache = MTCache(backend)
        cache.create_region("r1", update_interval=10, update_delay=2)
        cache.create_matview(
            "products_copy", "products", ["pid", "name", "price"], region="r1"
        )
        cache.run_for(11)

        result = cache.execute(
            "SELECT p.pid, p.price FROM products p CURRENCY BOUND 60 SEC ON (p)"
        )
        assert result.rows == [(1, 9.99)]
        assert result.plan.summary() == "guarded(products_copy)"
        assert cache.execute("SELECT p.price FROM products p").plan.summary() == "remote"

    def test_module_docstring_example(self):
        import repro

        assert "CURRENCY BOUND" in repro.__doc__


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro.common import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_parse_error_position(self):
        from repro.common.errors import ParseError

        error = ParseError("bad token", position=17)
        assert "17" in str(error)
        assert error.position == 17

    def test_catchable_as_repro_error(self):
        from repro import BackendServer, ReproError

        backend = BackendServer()
        with pytest.raises(ReproError):
            backend.execute("SELECT FROM nothing")
