"""Property-based end-to-end verification of the paper's central promise.

Hypothesis drives random interleavings of back-end updates, simulated-time
advances and cache queries with random currency bounds; after every query
the semantics checker verifies that the delivered result is equivalent to
evaluating the query on snapshots satisfying the normalized C&C constraint
— currency bounds respected, consistency classes on single snapshots.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.semantics.checker import ResultChecker


def build_cache(interval, delay, heartbeat):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE kv (id INT NOT NULL, v INT NOT NULL, w INT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    rows = ", ".join(f"({i}, {i * 10}, {i % 3})" for i in range(1, 21))
    backend.execute(f"INSERT INTO kv VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", interval, delay, heartbeat_interval=heartbeat)
    cache.create_matview("kv_a", "kv", ["id", "v", "w"], region="r1")
    cache.create_region("r2", interval * 1.5, delay, heartbeat_interval=heartbeat)
    cache.create_matview("kv_b", "kv", ["id", "v", "w"], region="r2")
    return backend, cache


# One workload step: either an update, a time advance, or a query.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(1, 20), st.integers(0, 999)),
        st.tuples(st.just("insert"), st.integers(21, 60), st.integers(0, 999)),
        st.tuples(st.just("advance"), st.floats(0.5, 12.0), st.just(0)),
        st.tuples(st.just("query"), st.sampled_from([0, 1, 3, 10, 40, 10_000]), st.just(0)),
        st.tuples(st.just("join_query"), st.sampled_from([3, 40, 10_000]), st.just(0)),
    ),
    min_size=4,
    max_size=14,
)


class TestEndToEndGuarantees:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(steps=steps, interval=st.sampled_from([4.0, 8.0]), delay=st.sampled_from([1.0, 2.0]))
    def test_every_result_satisfies_its_constraint(self, steps, interval, delay):
        backend, cache = build_cache(interval, delay, heartbeat=1.0)
        checker = ResultChecker(cache, deep=True)
        inserted = set()
        for kind, a, b in steps:
            if kind == "update":
                backend.execute(f"UPDATE kv SET v = {b} WHERE id = {a}")
            elif kind == "insert":
                if a in inserted:
                    continue
                inserted.add(a)
                backend.execute(f"INSERT INTO kv VALUES ({a}, {b}, {a % 3})")
            elif kind == "advance":
                cache.run_for(a)
            elif kind == "query":
                sql = (
                    "SELECT k.id, k.v FROM kv k WHERE k.v >= 0 "
                    f"CURRENCY BOUND {a} SEC ON (k)"
                )
                result = cache.execute(sql)
                report = checker.check(sql, result)
                assert report.ok, (report.violations, report.sources)
            else:  # join_query: two instances of kv, one consistency class
                sql = (
                    "SELECT x.id, y.v FROM kv x, kv y WHERE x.id = y.id "
                    f"CURRENCY BOUND {a} SEC ON (x, y)"
                )
                result = cache.execute(sql)
                report = checker.check(sql, result)
                assert report.ok, (report.violations, report.sources)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        advances=st.lists(st.floats(0.5, 9.0), min_size=1, max_size=6),
        bound=st.sampled_from([2.0, 5.0, 20.0]),
    )
    def test_guard_never_serves_beyond_bound(self, advances, bound):
        """Whenever the local branch is chosen, the true snapshot age must
        be within the bound."""
        backend, cache = build_cache(interval=6.0, delay=1.5, heartbeat=1.0)
        view = cache.catalog.matview("kv_a")
        for dt in advances:
            cache.run_for(dt)
            sql = f"SELECT k.id FROM kv k CURRENCY BOUND {bound} SEC ON (k)"
            result = cache.execute(sql)
            local = any(index == 0 for _, index in result.context.branches)
            if local:
                staleness = cache.clock.now() - view.snapshot_time
                assert staleness <= bound + 1e-9

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(advances=st.lists(st.floats(0.5, 9.0), min_size=2, max_size=6))
    def test_timeline_watermark_never_regresses(self, advances):
        backend, cache = build_cache(interval=6.0, delay=1.5, heartbeat=1.0)
        cache.execute("BEGIN TIMEORDERED")
        snapshots = []
        for i, dt in enumerate(advances):
            cache.run_for(dt)
            bound = [2.0, 10_000.0][i % 2]
            result = cache.execute(
                f"SELECT k.id FROM kv k CURRENCY BOUND {bound} SEC ON (k)"
            )
            if result.context.snapshots_used:
                snapshots.extend(result.context.snapshots_used)
            elif result.context.remote_queries:
                snapshots.append(cache.clock.now())
        assert snapshots == sorted(snapshots)
        cache.execute("END TIMEORDERED")
