"""Tests for the mixed-workload driver."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.workloads.driver import DriverReport, WorkloadDriver, point_lookup_factory


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE kv (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    rows = ", ".join(f"({i}, {i})" for i in range(1, 51))
    backend.execute(f"INSERT INTO kv VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 8, 2, heartbeat_interval=1)
    cache.create_matview("kv_copy", "kv", ["id", "v"], region="r1")
    cache.run_for(9)
    return cache


class TestDriverReport:
    def test_empty_report(self):
        report = DriverReport()
        assert report.local_fraction == 0.0
        assert report.local_fraction_for(5) == 0.0

    def test_record_accumulates(self, cache):
        report = DriverReport()
        result = cache.execute(
            "SELECT k.id FROM kv k CURRENCY BOUND 600 SEC ON (k)"
        )
        report.record(600, result)
        assert report.queries == 1
        assert report.local == 1
        assert report.rows_returned == 50

    def test_remote_counted(self, cache):
        report = DriverReport()
        result = cache.execute("SELECT k.id FROM kv k")  # default: remote
        report.record(0, result)
        assert report.local == 0
        assert report.remote_queries == 1
        assert report.rows_shipped == 50


class TestWorkloadDriver:
    def test_run_is_deterministic_per_seed(self, cache):
        factory = point_lookup_factory("kv", "id", (1, 50), alias="k")
        a = WorkloadDriver(cache, seed=7).run(factory, [60], n_queries=10)
        assert a.queries == 10
        assert a.rows_returned == 10  # one row per lookup

    def test_loose_bounds_stay_local(self, cache):
        factory = point_lookup_factory("kv", "id", (1, 50), alias="k")
        report = WorkloadDriver(cache, seed=3).run(
            factory, [10_000], n_queries=15, think_time=2.0
        )
        assert report.local_fraction == 1.0
        assert report.remote_queries == 0

    def test_tight_bounds_go_remote(self, cache):
        factory = point_lookup_factory("kv", "id", (1, 50), alias="k")
        report = WorkloadDriver(cache, seed=3).run(
            factory, [0], n_queries=10, think_time=2.0
        )
        assert report.local_fraction == 0.0
        assert report.remote_queries == 10

    def test_mixed_bounds_split(self, cache):
        factory = point_lookup_factory("kv", "id", (1, 50), alias="k")
        report = WorkloadDriver(cache, seed=11).run(
            factory, [0, 10_000], n_queries=30, think_time=1.5
        )
        assert report.local_fraction_for(10_000) == 1.0
        assert report.local_fraction_for(0) == 0.0
        assert 0.0 < report.local_fraction < 1.0

    def test_intermediate_bound_partial(self, cache):
        factory = point_lookup_factory("kv", "id", (1, 50), alias="k")
        # bound 5 with f=8, d=2: p = 3/8 analytically.
        report = WorkloadDriver(cache, seed=23).run(
            factory, [5], n_queries=60, think_time=1.3
        )
        assert 0.05 < report.local_fraction < 0.8
