"""End-to-end scenario tests: availability, recovery, multi-session flows.

These exercise the system the way the paper's introduction motivates it:
replication lag changing under the application's feet while its stated
C&C requirements keep being honored.
"""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.semantics.checker import ResultChecker
from repro.workloads.bookstore import load_bookstore


def make_shop(interval=10.0, delay=2.0):
    backend = BackendServer()
    load_bookstore(backend, n_books=40)
    cache = MTCache(backend)
    cache.create_region("books_r", interval, delay, heartbeat_interval=1.0)
    cache.create_matview("books_copy", "books", ["isbn", "title", "price", "stock"],
                         region="books_r")
    cache.run_for(interval + 1)
    return backend, cache


PRICE_Q = (
    "SELECT b.price FROM books b WHERE b.isbn = 7 CURRENCY BOUND {b} SEC ON (b)"
)


class TestReplicationLagScenario:
    """The paper's opening example: replication reconfigured from 30s to
    5min — which queries still get what they asked for?"""

    def test_slower_propagation_shifts_queries_remote(self):
        backend, cache = make_shop(interval=5.0)
        fine = cache.execute(PRICE_Q.format(b=30))
        assert fine.context.branches[0][1] == 0  # local is fine at 5s lag

        # Operations reconfigures replication to a 60-second interval.
        agent = cache.agents["books_r"]
        agent.stop()
        region = cache.catalog.region("books_r")
        region.update_interval = 60.0
        agent.start(cache.scheduler, interval=60.0)
        cache.run_for(45.0)  # mid-cycle: data now ~45s stale

        # The 30-second requirement is no longer met by the replica; the
        # system notices (unlike the status quo the paper criticizes) and
        # routes to the back-end.
        strict = cache.execute(PRICE_Q.format(b=30))
        assert strict.context.branches[0][1] == 1
        # A 5-minute tolerance still happily uses the replica.
        relaxed = cache.execute(PRICE_Q.format(b=300))
        assert relaxed.context.branches[0][1] == 0

    def test_guarantees_hold_through_reconfiguration(self):
        backend, cache = make_shop(interval=5.0)
        checker = ResultChecker(cache)
        agent = cache.agents["books_r"]
        agent.stop()
        agent.start(cache.scheduler, interval=40.0)
        for advance in (3.0, 17.0, 29.0, 44.0):
            cache.run_for(advance)
            backend.execute("UPDATE books SET price = price + 1 WHERE isbn = 7")
            sql = PRICE_Q.format(b=20)
            result = cache.execute(sql)
            report = checker.check(sql, result)
            assert report.ok, report.violations


class TestAgentOutageScenario:
    """A stopped distribution agent (replica effectively unavailable for
    maintenance): queries keep their guarantees via the back-end, and the
    replica resumes service after recovery."""

    def test_outage_and_recovery(self):
        backend, cache = make_shop(interval=10.0, delay=2.0)
        agent = cache.agents["books_r"]
        agent.stop()
        cache.run_for(120.0)  # replica goes very stale during the outage

        during = cache.execute(PRICE_Q.format(b=60))
        assert during.context.branches[0][1] == 1  # guard routes remote

        agent.start(cache.scheduler, interval=10.0)
        cache.run_for(11.0)
        after = cache.execute(PRICE_Q.format(b=60))
        assert after.context.branches[0][1] == 0  # replica serving again

    def test_results_always_correct_during_outage(self):
        backend, cache = make_shop()
        checker = ResultChecker(cache)
        cache.agents["books_r"].stop()
        backend.execute("UPDATE books SET stock = 0 WHERE isbn = 3")
        cache.run_for(50.0)
        sql = "SELECT b.isbn, b.stock FROM books b WHERE b.isbn = 3 CURRENCY BOUND 10 SEC ON (b)"
        result = cache.execute(sql)
        assert result.rows == [(3, 0)]  # must reflect the update (remote)
        assert checker.check(sql, result).ok


class TestMixedReadWriteSession:
    def test_order_workflow(self):
        backend, cache = make_shop()
        # A purchase: read price (can be slightly stale), write the stock
        # decrement (forwarded), then verify under timeline consistency.
        price = cache.execute(PRICE_Q.format(b=60)).scalar()
        assert price > 0
        stock_before = backend.execute(
            "SELECT b.stock FROM books b WHERE b.isbn = 7"
        ).scalar()
        cache.execute("BEGIN TIMEORDERED")
        cache.execute("UPDATE books SET stock = stock - 1 WHERE isbn = 7")
        # Prime the watermark with a current read, then confirm the write
        # is visible to the session even though the replica lags.
        cache.execute("SELECT b.isbn FROM books b WHERE b.isbn = 7 CURRENCY BOUND 0 SEC ON (b)")
        stock_seen = cache.execute(
            "SELECT b.stock FROM books b WHERE b.isbn = 7 CURRENCY BOUND 600 SEC ON (b)"
        ).scalar()
        cache.execute("END TIMEORDERED")
        assert stock_seen == stock_before - 1

    def test_two_interleaved_sessions_independent_watermarks(self):
        backend, cache = make_shop()
        # Our MTCache holds one session; emulate a second cache front-end
        # sharing the same back-end and views would share state, so instead
        # verify the watermark resets between brackets.
        cache.execute("BEGIN TIMEORDERED")
        cache.execute("SELECT b.isbn FROM books b CURRENCY BOUND 0 SEC ON (b)")
        forced_remote = cache.execute(
            "SELECT b.isbn FROM books b CURRENCY BOUND 600 SEC ON (b)"
        )
        assert forced_remote.context.branches[0][1] == 1
        cache.execute("END TIMEORDERED")
        # Outside (or in a fresh bracket) the replica is admissible again.
        fresh = cache.execute("SELECT b.isbn FROM books b CURRENCY BOUND 600 SEC ON (b)")
        assert fresh.context.branches[0][1] == 0


class TestConsistencyAcrossViewsScenario:
    def test_price_and_stock_views_same_region_join_consistently(self):
        backend, cache = make_shop()
        cache.create_matview("prices", "books", ["isbn", "price"], region="books_r")
        cache.create_matview("stocks", "books", ["isbn", "stock"], region="books_r")
        cache.run_for(11.0)
        checker = ResultChecker(cache)
        backend.execute("UPDATE books SET price = 1.0, stock = 1 WHERE isbn = 2")
        sql = (
            "SELECT p.isbn, p.price, s.stock FROM books p, books s "
            "WHERE p.isbn = s.isbn AND p.isbn = 2 "
            "CURRENCY BOUND 600 SEC ON (p, s)"
        )
        result = cache.execute(sql)
        report = checker.check(sql, result)
        assert report.ok, report.violations
        # Both columns reflect the same snapshot: either both old or both new.
        (isbn, price, stock) = result.rows[0]
        assert (price == 1.0) == (stock == 1)
