"""Tests for the hash semi-join rewrite of uncorrelated IN-subqueries."""

import pytest

from repro.cache.backend import BackendServer
from repro.optimizer.query_info import analyze_select
from repro.sql.parser import parse


@pytest.fixture()
def server():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE emp (eid INT NOT NULL, did INT NOT NULL, sal FLOAT NOT NULL, "
        "PRIMARY KEY (eid))"
    )
    backend.create_table(
        "CREATE TABLE dept (did INT NOT NULL, budget FLOAT NOT NULL, PRIMARY KEY (did))"
    )
    emps = ", ".join(f"({i}, {i % 10}, {float(i * 10)})" for i in range(1, 101))
    depts = ", ".join(f"({i}, {float(i * 1000)})" for i in range(10))
    backend.execute(f"INSERT INTO emp VALUES {emps}")
    backend.execute(f"INSERT INTO dept VALUES {depts}")
    backend.refresh_statistics()
    return backend


RICH_DEPTS = "SELECT d.did FROM dept d WHERE d.budget > 5000"
QUERY = f"SELECT e.eid FROM emp e WHERE e.did IN ({RICH_DEPTS})"


class TestRecognition:
    def test_eligible_in_subquery_recognized(self, server):
        info = analyze_select(parse(QUERY), server.catalog)
        assert len(info.semi_joins) == 1
        assert not info.post_conjuncts
        semi = info.semi_joins[0]
        assert semi.inner_table == "dept"
        assert semi.outer_ref.name == "did"

    def test_negated_becomes_anti_join(self, server):
        sql = QUERY.replace("IN", "NOT IN")
        info = analyze_select(parse(sql), server.catalog)
        assert len(info.semi_joins) == 1
        assert info.semi_joins[0].negated

    def test_correlated_not_rewritten(self, server):
        sql = (
            "SELECT e.eid FROM emp e WHERE e.did IN "
            "(SELECT d.did FROM dept d WHERE d.budget > e.sal)"
        )
        info = analyze_select(parse(sql), server.catalog)
        assert not info.semi_joins
        assert len(info.post_conjuncts) == 1

    def test_correlated_via_unqualified_column_not_rewritten(self, server):
        sql = (
            "SELECT e.eid FROM emp e WHERE e.did IN "
            "(SELECT d.did FROM dept d WHERE budget > sal)"
        )
        info = analyze_select(parse(sql), server.catalog)
        assert not info.semi_joins

    def test_aggregating_subquery_not_rewritten(self, server):
        sql = (
            "SELECT e.eid FROM emp e WHERE e.did IN "
            "(SELECT d.did FROM dept d GROUP BY d.did)"
        )
        info = analyze_select(parse(sql), server.catalog)
        assert not info.semi_joins

    def test_exists_not_rewritten(self, server):
        sql = (
            "SELECT e.eid FROM emp e WHERE EXISTS "
            "(SELECT 1 FROM dept d WHERE d.did = e.did)"
        )
        info = analyze_select(parse(sql), server.catalog)
        assert not info.semi_joins
        assert len(info.post_conjuncts) == 1


class TestExecution:
    def test_semi_join_in_plan(self, server):
        plan = server.optimize(QUERY)
        assert "HashSemiJoin" in plan.explain()

    def test_results_correct(self, server):
        result = server.execute(QUERY)
        # Rich departments: budget > 5000 -> dids 6..9.
        expected = sorted(i for i in range(1, 101) if i % 10 in (6, 7, 8, 9))
        assert sorted(r[0] for r in result.rows) == expected

    def test_matches_naive_evaluation(self, server):
        from repro.engine.executor import ExecutionContext

        root, _, _ = server._build_naive(parse(QUERY))
        ctx = ExecutionContext(clock=server.clock)
        naive = server.executor.execute(root, ctx=ctx).rows
        optimized = server.execute(QUERY).rows
        assert sorted(optimized) == sorted(naive)

    def test_empty_inner_relation(self, server):
        sql = (
            "SELECT e.eid FROM emp e WHERE e.did IN "
            "(SELECT d.did FROM dept d WHERE d.budget > 1000000)"
        )
        assert server.execute(sql).rows == []

    def test_semi_join_with_outer_predicate(self, server):
        sql = QUERY + " AND e.sal < 300"
        result = server.execute(sql)
        expected = sorted(
            i for i in range(1, 101) if i % 10 in (6, 7, 8, 9) and i * 10 < 300
        )
        assert sorted(r[0] for r in result.rows) == expected

    def test_semi_join_below_aggregation(self, server):
        sql = (
            f"SELECT e.did, COUNT(*) AS n FROM emp e WHERE e.did IN ({RICH_DEPTS}) "
            "GROUP BY e.did ORDER BY e.did"
        )
        result = server.execute(sql)
        assert result.rows == [(6, 10), (7, 10), (8, 10), (9, 10)]

    def test_two_semi_joins(self, server):
        sql = (
            "SELECT e.eid FROM emp e WHERE e.did IN "
            "(SELECT d.did FROM dept d WHERE d.budget > 5000) AND e.did IN "
            "(SELECT d.did FROM dept d WHERE d.budget < 8000)"
        )
        result = server.execute(sql)
        expected = sorted(i for i in range(1, 101) if i % 10 in (6, 7))
        assert sorted(r[0] for r in result.rows) == expected

    def test_not_in_anti_join_results(self, server):
        sql = QUERY.replace("IN", "NOT IN")
        plan = server.optimize(sql)
        assert "HashAntiJoin" in plan.explain()
        result = server.execute(sql)
        expected = sorted(i for i in range(1, 101) if i % 10 not in (6, 7, 8, 9))
        assert sorted(r[0] for r in result.rows) == expected

    def test_not_in_with_null_in_inner_returns_nothing(self, server):
        server.create_table(
            "CREATE TABLE maybe (id INT NOT NULL, ref INT, PRIMARY KEY (id))"
        )
        server.execute("INSERT INTO maybe VALUES (1, 6), (2, NULL)")
        server.refresh_statistics()
        # SQL's NOT IN trap: a NULL on the right makes every comparison
        # unknown, so no rows qualify.
        result = server.execute(
            "SELECT e.eid FROM emp e WHERE e.did NOT IN (SELECT m.ref FROM maybe m)"
        )
        assert result.rows == []

    def test_not_in_null_semantics_matches_naive(self, server):
        server.create_table(
            "CREATE TABLE maybe2 (id INT NOT NULL, ref INT, PRIMARY KEY (id))"
        )
        server.execute("INSERT INTO maybe2 VALUES (1, 6), (2, NULL)")
        server.refresh_statistics()
        sql = "SELECT e.eid FROM emp e WHERE e.did NOT IN (SELECT m.ref FROM maybe2 m)"
        from repro.engine.executor import ExecutionContext

        root, _, _ = server._build_naive(parse(sql))
        ctx = ExecutionContext(clock=server.clock)
        naive = server.executor.execute(root, ctx=ctx).rows
        assert sorted(server.execute(sql).rows) == sorted(naive) == []

    def test_null_keys_never_match(self, server):
        server.create_table(
            "CREATE TABLE nk (id INT NOT NULL, ref INT, PRIMARY KEY (id))"
        )
        server.execute("INSERT INTO nk VALUES (1, 6), (2, NULL)")
        server.refresh_statistics()
        result = server.execute(
            "SELECT n.id FROM nk n WHERE n.ref IN (SELECT d.did FROM dept d)"
        )
        assert result.rows == [(1,)]


class TestCacheBehavior:
    def test_cache_still_ships_subqueries_whole(self, server):
        from repro.cache.mtcache import MTCache

        cache = MTCache(server)
        cache.create_region("r", 10, 2, heartbeat_interval=1)
        cache.create_matview("emp_copy", "emp", ["eid", "did", "sal"], region="r")
        cache.run_for(11)
        plan = cache.optimize(QUERY)
        assert plan.summary() == "remote"
        result = cache.execute(QUERY)
        assert len(result.rows) == 40
