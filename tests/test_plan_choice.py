"""Integration test: the paper's Table 4.3 plan choices, Q1–Q7.

With SF 1.0 statistics installed (plan choice depends only on statistics),
the optimizer must reproduce the paper's decisions exactly:

* Q1 — no currency clause, selective join: plan 1 (whole query remote);
* Q2 — no currency clause, unselective join: plan 2 (local join of two
  remote base-table fetches, because the join result outweighs the
  sources);
* Q3 — bounds fine but single consistency class across two regions:
  remote;
* Q4 — consistency relaxed, Customer's bound below CR1's delay: mixed
  plan (remote Customer + guarded orders_prj);
* Q5 — both bounds satisfiable, separate classes: both local, guarded;
* Q6 — 53-row acctbal range: remote (back-end secondary index wins);
* Q7 — 5975-row acctbal range: guarded local view scan.
"""

import pytest

from repro.engine import operators as ops
from repro.workloads.experiment import build_paper_setup
from repro.workloads.queries import plan_choice_query


@pytest.fixture(scope="module")
def setup():
    return build_paper_setup(scale_factor=0.002)


def plan_for(setup, name):
    return setup.cache.optimize(plan_choice_query(name))


class TestPlanChoices:
    def test_q1_whole_query_remote(self, setup):
        plan = plan_for(setup, "q1")
        assert plan.summary() == "remote"
        assert isinstance(plan.root(), ops.RemoteQuery)

    def test_q2_local_join_of_two_remote_fetches(self, setup):
        plan = plan_for(setup, "q2")
        assert plan.summary() == "hashjoin(remote, remote)"
        remotes = [op for op in plan.root().walk() if isinstance(op, ops.RemoteQuery)]
        assert len(remotes) == 2
        # Each remote query fetches one base table, not the join.
        tables = {("customer" in r.sql, "orders" in r.sql) for r in remotes}
        assert tables == {(True, False), (False, True)}

    def test_q3_consistency_forces_remote(self, setup):
        plan = plan_for(setup, "q3")
        assert plan.summary() == "remote"

    def test_q4_mixed_plan(self, setup):
        plan = plan_for(setup, "q4")
        summary = plan.summary()
        assert "guarded(orders_prj)" in summary
        assert "remote" in summary
        assert "cust_prj" not in summary

    def test_q5_both_local_guarded(self, setup):
        plan = plan_for(setup, "q5")
        summary = plan.summary()
        assert "guarded(orders_prj)" in summary
        assert "guarded(cust_prj)" in summary
        assert "remote" not in summary

    def test_q6_remote_on_cost(self, setup):
        plan = plan_for(setup, "q6")
        assert plan.summary() == "remote"

    def test_q7_local_guarded_on_cost(self, setup):
        plan = plan_for(setup, "q7")
        assert plan.summary() == "guarded(cust_prj)"

    def test_q6_q7_differ_only_in_range(self, setup):
        # The pure cost-based flip of §4.1's last experiment.
        q6 = plan_choice_query("q6")
        q7 = plan_choice_query("q7")
        assert q6.split("BETWEEN")[0] == q7.split("BETWEEN")[0]

    def test_every_local_access_is_guarded(self, setup):
        # §4.1: "every local data access is protected by a currency guard".
        for name in ("q4", "q5", "q7"):
            plan = plan_for(setup, name)
            for op in plan.root().walk():
                if isinstance(op, (ops.SeqScan, ops.IndexSeek, ops.IndexRangeScan)):
                    if setup.cache.catalog.has_matview(op.table.name):
                        assert _under_switch_union(plan.root(), op), name


def _under_switch_union(root, target):
    def search(op, guarded):
        if op is target:
            return guarded
        for child in op.children():
            if search(child, guarded or isinstance(op, ops.SwitchUnion)):
                return True
        return False

    return search(root, False)


class TestPlanExecutions:
    """The chosen plans must also run correctly against the real (small)
    data, with guards live."""

    def test_q1_executes(self, setup):
        result = setup.cache.execute(plan_choice_query("q1", setup.scale_factor))
        assert len(result.rows) > 0

    def test_q5_executes_locally(self, setup):
        result = setup.cache.execute(plan_choice_query("q5", setup.scale_factor))
        assert len(result.rows) > 0
        assert all(index == 0 for _, index in result.context.branches)

    def test_q5_result_matches_backend(self, setup):
        sql = plan_choice_query("q5", setup.scale_factor)
        cache_result = setup.cache.execute(sql)
        backend_result = setup.backend.execute(sql)
        assert sorted(cache_result.rows) == sorted(backend_result.rows)

    def test_q7_executes(self, setup):
        result = setup.cache.execute(plan_choice_query("q7", setup.scale_factor))
        assert result.context.branches[0][0] == "cust_prj"
