"""Tests for repro.fleet: routing policies, the simulated network, fault
injection, circuit breaking, and driving a fleet with the workload driver."""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.cli import Shell
from repro.common.clock import SimulatedClock
from repro.common.errors import NetworkError
from repro.fleet import (
    POLICIES,
    BreakerState,
    CacheFleet,
    CircuitBreaker,
    SimulatedNetwork,
    bound_from_sql,
    make_policy,
)
from repro.workloads.driver import WorkloadDriver, point_lookup_factory

LOOSE = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
STRICT = "SELECT t.id, t.v FROM t CURRENCY BOUND 2 SEC ON (t)"
REMOTE_ONLY = "SELECT t.id, t.v FROM t CURRENCY BOUND 0 SEC ON (t)"


def make_backend(rows=20):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    values = ", ".join(f"({i}, {i * 10})" for i in range(1, rows + 1))
    backend.execute(f"INSERT INTO t VALUES {values}")
    backend.refresh_statistics()
    return backend


def make_fleet(n_nodes=3, policy="round_robin", settle=True, **kwargs):
    backend = make_backend()
    fleet = CacheFleet(backend, n_nodes=n_nodes, policy=policy, **kwargs)
    fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    fleet.create_matview("t_copy", "t", ["id", "v"], region="r")
    if settle:
        fleet.run_for(6.0)
    return fleet


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestBoundFromSql:
    def test_units(self):
        assert bound_from_sql("... CURRENCY BOUND 10 SEC ON (t)") == 10.0
        assert bound_from_sql("... CURRENCY BOUND 2 MIN ON (t)") == 120.0
        assert bound_from_sql("... currency bound 500 ms on (t)") == 0.5

    def test_multiple_bounds_take_tightest(self):
        sql = "... CURRENCY BOUND 10 SEC ON (a), 5 SEC ON (b)"
        # Only the leading spec matches the BOUND keyword; a second full
        # clause would re-match.
        assert bound_from_sql(sql + " CURRENCY BOUND 3 SEC ON (c)") == 3.0

    def test_no_clause(self):
        assert bound_from_sql("SELECT t.id FROM t") is None

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="round_robin"):
            make_policy("fastest_first")
        assert set(POLICIES) == {"round_robin", "least_loaded", "staleness_aware"}


class TestRouting:
    def test_round_robin_cycles(self):
        fleet = make_fleet(policy="round_robin")
        nodes = [fleet.execute(LOOSE).node for _ in range(6)]
        assert nodes == ["node0", "node1", "node2", "node0", "node1", "node2"]

    def test_least_loaded_balances(self):
        fleet = make_fleet(policy="least_loaded")
        for _ in range(9):
            fleet.execute(LOOSE)
        assert [n.queries_routed for n in fleet.nodes] == [3, 3, 3]

    def test_staleness_aware_avoids_stale_node(self):
        fleet = make_fleet(policy="staleness_aware")
        # Stall node0's agents: its region's heartbeat stops advancing.
        fleet.network.stall_agents(30.0, node="node0")
        fleet.run_for(8.0)
        assert fleet.node("node0").max_staleness() > 2.0
        served = {fleet.execute(STRICT, bound=2.0).node for _ in range(6)}
        assert "node0" not in served
        assert served <= {"node1", "node2"}

    def test_staleness_aware_falls_back_to_least_stale(self):
        fleet = make_fleet(policy="staleness_aware")
        fleet.network.stall_agents(30.0)  # every node's agents stall
        fleet.run_for(8.0)
        result = fleet.execute(STRICT, bound=2.0)
        assert result.node in {"node0", "node1", "node2"}
        assert result.routing in ("remote", "mixed")  # guard sent it back

    def test_routed_counter_labelled_by_node(self):
        fleet = make_fleet()
        for _ in range(3):
            fleet.execute(LOOSE)
        snap = fleet.metrics.snapshot()
        key = 'fleet_routed_total{node="node1",policy="round_robin"}'
        assert snap[key] == 1


# ----------------------------------------------------------------------
# Simulated network
# ----------------------------------------------------------------------
class TestSimulatedNetwork:
    def test_latency_advances_the_clock(self):
        clock = SimulatedClock()
        net = SimulatedNetwork(clock, latency=0.05)
        before = clock.now()
        assert net.call(lambda: "ok") == "ok"
        assert clock.now() == pytest.approx(before + 0.05)

    def test_drop_raises_network_error(self):
        net = SimulatedNetwork(SimulatedClock(), drop_rate=1.0)
        with pytest.raises(NetworkError) as exc:
            net.call(lambda: "ok")
        assert exc.value.reason == "drop"

    def test_timeout(self):
        clock = SimulatedClock()
        net = SimulatedNetwork(clock, latency=0.5, timeout=0.1)
        with pytest.raises(NetworkError) as exc:
            net.call(lambda: "ok")
        assert exc.value.reason == "timeout"
        assert clock.now() == pytest.approx(0.1)  # waited out the timeout

    def test_outage_window(self):
        clock = SimulatedClock()
        net = SimulatedNetwork(clock)
        net.inject_outage(2.0, start=1.0)
        assert net.backend_available()
        clock.advance(1.5)
        assert not net.backend_available()
        assert net.outage_ends_at() == pytest.approx(3.0)
        with pytest.raises(NetworkError) as exc:
            net.call(lambda: "ok")
        assert exc.value.reason == "outage"
        clock.advance(2.0)
        assert net.backend_available()

    def test_stall_windows_are_per_node(self):
        clock = SimulatedClock()
        net = SimulatedNetwork(clock)
        net.stall_agents(5.0, node="node1")
        assert net.agents_stalled(node="node1")
        assert not net.agents_stalled(node="node0")
        assert net.agents_stalled()  # no node filter: any stall counts
        clock.advance(6.0)
        assert not net.agents_stalled(node="node1")

    def test_clear_faults(self):
        net = SimulatedNetwork(SimulatedClock())
        net.inject_outage(10.0)
        net.stall_agents(10.0)
        net.clear_faults()
        assert net.backend_available()
        assert not net.agents_stalled()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=3, reset_timeout=5.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.available()

    def test_half_open_probe_then_close(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        assert not breaker.available()
        clock.advance(5.0)
        assert breaker.available()  # transitions to half-open
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.available()
        breaker.record_failure()  # probe failed
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_at == pytest.approx(10.0)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(SimulatedClock(), failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_retrip_restarts_the_cooldown(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=2, reset_timeout=5.0)
        breaker.record_failure()
        breaker.record_failure()  # trips at t=0
        clock.advance(5.0)
        assert breaker.available()
        assert breaker.state is BreakerState.HALF_OPEN
        # A single probe failure re-trips immediately — no second chance,
        # no waiting for the full failure threshold — and the cooldown
        # restarts from the re-trip, not the original open.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_at == pytest.approx(10.0)
        assert not breaker.available()
        clock.advance(4.9)
        assert not breaker.available()
        clock.advance(0.2)
        assert breaker.available()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_breaker_state_surfaces_in_fleet_status(self):
        fleet = make_fleet(reset_timeout=5.0)
        node = fleet.node("node1")
        for _ in range(node.breaker.failure_threshold):
            node.breaker.record_failure()
        status = fleet.status()
        assert status["nodes"]["node1"]["breaker"] == "open"
        assert status["nodes"]["node0"]["breaker"] == "closed"
        fleet.run_for(5.0)
        node.breaker.available()  # cooldown elapsed: probe admitted
        assert fleet.status()["nodes"]["node1"]["breaker"] == "half_open"


# ----------------------------------------------------------------------
# Fleet topology & DDL
# ----------------------------------------------------------------------
class TestFleetTopology:
    def test_per_node_regions_share_one_backend(self):
        fleet = make_fleet()
        assert fleet.regions["r"] == {
            "node0": "r@node0", "node1": "r@node1", "node2": "r@node2"
        }
        # One heartbeat row per node-region in the back-end table.
        (hb,) = [e.table for e in fleet.backend.catalog.tables()
                 if e.name == "heartbeat"]
        assert {values[0] for _, values in hb.scan()} == {
            "r@node0", "r@node1", "r@node2"
        }

    def test_unknown_region_rejected(self):
        fleet = make_fleet()
        with pytest.raises(KeyError, match="create_region first"):
            fleet.create_matview("x", "t", ["id"], region="nope")

    def test_node_lookup(self):
        fleet = make_fleet()
        assert fleet.node("node2").name == "node2"
        with pytest.raises(KeyError):
            fleet.node("node9")

    def test_every_node_serves_locally_after_settle(self):
        fleet = make_fleet()
        for node in fleet.nodes:
            result = node.execute(LOOSE)
            assert result.routing == "local"
            assert len(result.rows) == 20


# ----------------------------------------------------------------------
# Outage behavior
# ----------------------------------------------------------------------
class TestOutage:
    def test_loose_bounds_keep_serving_locally(self):
        fleet = make_fleet()
        fleet.network.inject_outage(2.0)
        result = fleet.execute(LOOSE)
        assert result.routing == "local"
        assert result.warnings == []  # guard passed; nothing degraded

    def test_strict_bounds_degrade_with_warning(self):
        fleet = make_fleet()
        fleet.network.stall_agents(10.0)
        fleet.network.inject_outage(10.0)
        fleet.run_for(4.0)  # staleness grows past the strict bound
        result = fleet.execute(STRICT)
        assert result.routing == "local"  # served stale, not errored
        assert any("degraded" in w for w in result.warnings)
        snap = fleet.metrics.snapshot()
        degraded = [k for k in snap if k.startswith("fleet_degraded_total")]
        assert degraded and sum(snap[k] for k in degraded) >= 1

    def test_remote_only_query_rides_out_the_outage(self):
        fleet = make_fleet(reset_timeout=0.5)
        fleet.network.inject_outage(2.0)
        start = fleet.clock.now()
        result = fleet.execute(REMOTE_ONLY)
        # The call retried on the simulated clock until the outage passed.
        assert fleet.clock.now() >= start + 2.0
        assert len(result.rows) == 20
        snap = fleet.metrics.snapshot()
        retries = [k for k in snap if k.startswith("fleet_remote_retries_total")]
        assert retries
        transitions = [k for k in snap if k.startswith("fleet_breaker_transitions_total")]
        assert transitions  # the serving node's breaker opened and recovered
        assert fleet.node(result.node).breaker.state is BreakerState.CLOSED

    def test_remote_only_query_fails_past_max_wait(self):
        fleet = make_fleet(max_remote_wait=1.0, reset_timeout=0.25)
        fleet.network.inject_outage(30.0)
        with pytest.raises(NetworkError):
            fleet.execute(REMOTE_ONLY)

    def test_error_policy_node_still_errors(self):
        from repro.common.errors import CurrencyError

        fleet = make_fleet(fallback_policy="error")
        fleet.network.stall_agents(10.0)
        fleet.network.inject_outage(10.0)
        fleet.run_for(4.0)
        with pytest.raises(CurrencyError):
            fleet.execute(STRICT)


# ----------------------------------------------------------------------
# Dropped packets
# ----------------------------------------------------------------------
class TestDrops:
    def test_retries_absorb_moderate_drop_rate(self):
        fleet = make_fleet()
        fleet.network.drop_rate = 0.5
        result = fleet.execute(REMOTE_ONLY)
        assert len(result.rows) == 20
        snap = fleet.metrics.snapshot()
        ok = [k for k in snap if 'outcome="ok"' in k]
        assert ok


# ----------------------------------------------------------------------
# Driving a fleet with the workload driver
# ----------------------------------------------------------------------
class TestFleetDriver:
    def test_by_node_counts_and_labelled_metrics(self):
        fleet = make_fleet()
        factory = point_lookup_factory("t", "id", (1, 20))
        report = WorkloadDriver(fleet, seed=5).run(
            factory, [600], n_queries=9, think_time=0.1
        )
        assert report.queries == 9
        assert sum(report.by_node.values()) == 9
        assert set(report.by_node) == {"node0", "node1", "node2"}
        # Satellite fix: per-node snapshots under node-labelled keys.
        assert set(report.metrics) == {"fleet", "node0", "node1", "node2"}
        for name in ("node0", "node1", "node2"):
            assert any(
                k.startswith("queries_total") for k in report.metrics[name]
            ), name

    def test_outage_run_completes_with_zero_errors(self):
        fleet = make_fleet(reset_timeout=0.5)
        factory = point_lookup_factory("t", "id", (1, 20))
        fleet.network.inject_outage(2.0)
        fleet.network.stall_agents(2.0)
        report = WorkloadDriver(fleet, seed=9).run(
            factory, [2, 600], n_queries=20, think_time=0.3, raise_errors=False
        )
        assert report.errors == 0
        assert report.queries == 20
        assert report.local_fraction_for(600) == 1.0

    def test_outage_plus_stall_degrades_instead_of_erroring(self):
        # Regression for the lifecycle refactor: an outage combined with
        # stalled agents must still end in stale-with-warning serves (the
        # serve_stale fallback), never raised errors.
        fleet = make_fleet(reset_timeout=0.5)
        fleet.network.stall_agents(10.0)
        fleet.network.inject_outage(10.0)
        fleet.run_for(4.0)  # staleness grows past the strict bound
        factory = point_lookup_factory("t", "id", (1, 20))
        report = WorkloadDriver(fleet, seed=3).run(
            factory, [2], n_queries=10, think_time=0.2, raise_errors=False
        )
        assert report.errors == 0
        assert report.queries == 10
        assert report.warnings >= 1  # explicitly-declared degradation
        snap = fleet.metrics.snapshot()
        degraded = sum(v for k, v in snap.items()
                       if k.startswith("fleet_degraded_total"))
        assert degraded >= 1

    def test_single_cache_metrics_snapshot_unchanged(self):
        from repro.cache.mtcache import MTCache

        backend = make_backend()
        cache = MTCache(backend)
        cache.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
        cache.create_matview("t_copy", "t", ["id", "v"], region="r")
        cache.run_for(6.0)
        factory = point_lookup_factory("t", "id", (1, 20))
        report = WorkloadDriver(cache, seed=5).run(factory, [600], n_queries=3)
        # Flat registry snapshot, exactly as before the fleet existed.
        assert any(k.startswith("queries_total") for k in report.metrics)
        assert report.by_node == {}


# ----------------------------------------------------------------------
# Capacity ledger
# ----------------------------------------------------------------------
class TestCapacityLedger:
    def test_makespan_shrinks_with_more_nodes(self):
        single = make_fleet(n_nodes=1)
        triple = make_fleet(n_nodes=3)
        factory = point_lookup_factory("t", "id", (1, 20))
        for fleet in (single, triple):
            fleet.reset_load()
            WorkloadDriver(fleet, seed=2).run(factory, [600], n_queries=30,
                                             think_time=0)
        assert single.simulated_makespan() > 0
        # Three nodes split the same work; allow generous scheduling slack.
        assert triple.simulated_makespan() < single.simulated_makespan()

    def test_reset_load_clears_the_ledger(self):
        fleet = make_fleet()
        fleet.execute(LOOSE)
        assert fleet.simulated_makespan() > 0
        fleet.reset_load()
        assert fleet.simulated_makespan() == 0.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFleetShell:
    def test_fleet_command_renders_status(self):
        fleet = make_fleet()
        fleet.execute(LOOSE)
        out = io.StringIO()
        shell = Shell(fleet, out=out)
        shell.handle("\\fleet")
        text = out.getvalue()
        assert "policy: round_robin" in text
        assert "node0" in text and "node2" in text
        assert "breaker=closed" in text
        assert "network:" in text

    def test_sql_routes_through_the_fleet(self):
        fleet = make_fleet()
        out = io.StringIO()
        shell = Shell(fleet, out=out)
        shell.handle(LOOSE)
        assert "node: node0" in out.getvalue()

    def test_fleet_command_without_fleet(self):
        from repro.cache.mtcache import MTCache

        cache = MTCache(make_backend())
        out = io.StringIO()
        Shell(cache, out=out).handle("\\fleet")
        assert "no fleet attached" in out.getvalue()
