"""Unit tests for the TimelineSession state machine."""

import pytest

from repro.cc.timeline import TimelineSession
from repro.common.errors import ConsistencyError


class TestTimelineSession:
    def test_inactive_admits_everything(self):
        session = TimelineSession()
        assert session.admits(0.0)
        assert session.admits(-100.0)

    def test_begin_resets_watermark(self):
        session = TimelineSession()
        session.begin()
        session.observe(50.0)
        session.end()
        session.begin()
        assert session.watermark == 0.0

    def test_double_begin_raises(self):
        session = TimelineSession()
        session.begin()
        with pytest.raises(ConsistencyError):
            session.begin()

    def test_end_without_begin_raises(self):
        with pytest.raises(ConsistencyError):
            TimelineSession().end()

    def test_watermark_advances_monotonically(self):
        session = TimelineSession()
        session.begin()
        session.observe(10.0)
        session.observe(5.0)  # must not move backwards
        assert session.watermark == 10.0
        session.observe(20.0)
        assert session.watermark == 20.0

    def test_admits_at_or_after_watermark(self):
        session = TimelineSession()
        session.begin()
        session.observe(10.0)
        assert session.admits(10.0)
        assert session.admits(11.0)
        assert not session.admits(9.9)

    def test_observe_ignored_when_inactive(self):
        session = TimelineSession()
        session.observe(99.0)
        assert session.watermark == 0.0
