"""Tests for physical operators and the executor."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ExecutionError
from repro.engine import operators as ops
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.expressions import (
    ExpressionContext,
    OutputCol,
    RowBinding,
    compile_expr,
)
from repro.sql.parser import parse_expression
from repro.storage.schema import Column, DataType, Schema
from repro.storage.table import HeapTable


def make_table(rows):
    schema = Schema(
        [
            Column("id", DataType.INT, nullable=False),
            Column("grp", DataType.INT),
            Column("v", DataType.FLOAT),
        ]
    )
    table = HeapTable("t", schema, primary_key=["id"])
    for row in rows:
        table.insert(row)
    return table


def binding_for(alias="t"):
    return RowBinding([OutputCol("id", alias), OutputCol("grp", alias), OutputCol("v", alias)])


def predicate(sql, binding):
    return compile_expr(parse_expression(sql), binding, ExpressionContext())


def run_op(op):
    executor = Executor(clock=SimulatedClock())
    return executor.execute(op)


ROWS = [(1, 1, 10.0), (2, 1, 20.0), (3, 2, 30.0), (4, 2, 40.0), (5, 3, 50.0)]


class TestScans:
    def test_seq_scan_all(self):
        result = run_op(ops.SeqScan(make_table(ROWS), binding_for()))
        assert len(result.rows) == 5

    def test_seq_scan_with_predicate(self):
        binding = binding_for()
        scan = ops.SeqScan(make_table(ROWS), binding, predicate=predicate("t.v > 25", binding))
        assert [r[0] for r in run_op(scan).rows] == [3, 4, 5]

    def test_index_seek(self):
        table = make_table(ROWS)
        binding = binding_for()
        seek = ops.IndexSeek(
            table, table.clustered_index(), [lambda env: 3], binding
        )
        assert run_op(seek).rows == [(3, 2, 30.0)]

    def test_index_seek_miss(self):
        table = make_table(ROWS)
        seek = ops.IndexSeek(table, table.clustered_index(), [lambda env: 99], binding_for())
        assert run_op(seek).rows == []

    def test_index_range_scan(self):
        table = make_table(ROWS)
        scan = ops.IndexRangeScan(
            table, table.clustered_index(), binding_for(), low=(2,), high=(4,)
        )
        assert [r[0] for r in run_op(scan).rows] == [2, 3, 4]

    def test_index_range_scan_with_residual(self):
        table = make_table(ROWS)
        binding = binding_for()
        scan = ops.IndexRangeScan(
            table,
            table.clustered_index(),
            binding,
            low=(2,),
            high=(5,),
            predicate=predicate("t.grp = 2", binding),
        )
        assert [r[0] for r in run_op(scan).rows] == [3, 4]

    def test_secondary_index_order(self):
        table = make_table(ROWS)
        ix = table.create_index("by_v", ["v"])
        scan = ops.IndexRangeScan(table, ix, binding_for(), low=(15.0,))
        assert [r[2] for r in run_op(scan).rows] == [20.0, 30.0, 40.0, 50.0]


class TestFilterProject:
    def test_filter(self):
        binding = binding_for()
        plan = ops.Filter(
            ops.SeqScan(make_table(ROWS), binding), predicate("t.grp = 1", binding)
        )
        assert len(run_op(plan).rows) == 2

    def test_project(self):
        binding = binding_for()
        out = RowBinding([OutputCol("twice")])
        plan = ops.Project(
            ops.SeqScan(make_table(ROWS), binding),
            [compile_expr(parse_expression("t.v * 2"), binding)],
            out,
        )
        assert run_op(plan).rows[0] == (20.0,)


class TestJoins:
    def left_rows(self):
        return [(1, "a"), (2, "b"), (3, "c")]

    def right_rows(self):
        return [(1, 10.0), (1, 11.0), (3, 30.0), (4, 40.0)]

    def make_sides(self):
        lb = RowBinding([OutputCol("k", "l"), OutputCol("name", "l")])
        rb = RowBinding([OutputCol("k", "r"), OutputCol("v", "r")])
        left = ops.Materialized(self.left_rows(), lb)
        right = ops.Materialized(self.right_rows(), rb)
        return left, right, lb, rb

    def key_fn(self, binding, sql):
        return compile_expr(parse_expression(sql), binding)

    def test_hash_join(self):
        left, right, lb, rb = self.make_sides()
        plan = ops.HashJoin(
            left, right, [self.key_fn(lb, "l.k")], [self.key_fn(rb, "r.k")], lb.concat(rb)
        )
        rows = run_op(plan).rows
        assert sorted(rows) == [(1, "a", 1, 10.0), (1, "a", 1, 11.0), (3, "c", 3, 30.0)]

    def test_hash_join_empty_keys_is_cross_product(self):
        left, right, lb, rb = self.make_sides()
        plan = ops.HashJoin(left, right, [], [], lb.concat(rb))
        assert len(run_op(plan).rows) == 12

    def test_hash_join_null_keys_never_match(self):
        lb = RowBinding([OutputCol("k", "l")])
        rb = RowBinding([OutputCol("k", "r")])
        left = ops.Materialized([(None,), (1,)], lb)
        right = ops.Materialized([(None,), (1,)], rb)
        plan = ops.HashJoin(
            left, right, [self.key_fn(lb, "l.k")], [self.key_fn(rb, "r.k")], lb.concat(rb)
        )
        assert run_op(plan).rows == [(1, 1)]

    def test_hash_join_residual(self):
        left, right, lb, rb = self.make_sides()
        combined = lb.concat(rb)
        plan = ops.HashJoin(
            left,
            right,
            [self.key_fn(lb, "l.k")],
            [self.key_fn(rb, "r.k")],
            combined,
            residual=predicate("r.v > 10.5", combined),
        )
        assert sorted(run_op(plan).rows) == [(1, "a", 1, 11.0), (3, "c", 3, 30.0)]

    def test_merge_join(self):
        left, right, lb, rb = self.make_sides()
        plan = ops.MergeJoin(
            left, right, [self.key_fn(lb, "l.k")], [self.key_fn(rb, "r.k")], lb.concat(rb)
        )
        rows = run_op(plan).rows
        assert sorted(rows) == [(1, "a", 1, 10.0), (1, "a", 1, 11.0), (3, "c", 3, 30.0)]

    def test_merge_join_right_side_behind(self):
        # Regression: with gaps on the left, the right side must skip
        # forward (the advance condition once read `rk > lk` and silently
        # produced misaligned pairs).
        lb = RowBinding([OutputCol("k", "l")])
        rb = RowBinding([OutputCol("k", "r")])
        left = ops.Materialized([(1,), (8,), (9,)], lb)
        right = ops.Materialized([(i,) for i in range(1, 11)], rb)
        plan = ops.MergeJoin(
            left, right, [self.key_fn(lb, "l.k")], [self.key_fn(rb, "r.k")], lb.concat(rb)
        )
        assert run_op(plan).rows == [(1, 1), (8, 8), (9, 9)]

    def test_merge_join_duplicate_blocks_both_sides(self):
        lb = RowBinding([OutputCol("k", "l")])
        rb = RowBinding([OutputCol("k", "r")])
        left = ops.Materialized([(1,), (1,), (2,)], lb)
        right = ops.Materialized([(1,), (1,), (2,)], rb)
        plan = ops.MergeJoin(
            left, right, [self.key_fn(lb, "l.k")], [self.key_fn(rb, "r.k")], lb.concat(rb)
        )
        assert len(run_op(plan).rows) == 5  # 2x2 + 1

    def test_index_nl_join(self):
        table = make_table(ROWS)
        outer_binding = RowBinding([OutputCol("okey", "o")])
        outer = ops.Materialized([(2,), (5,), (9,)], outer_binding)
        inner_binding = binding_for()
        key_binding = RowBinding([], outer=outer_binding)
        inner = ops.IndexSeek(
            table,
            table.clustered_index(),
            [compile_expr(parse_expression("o.okey"), key_binding)],
            inner_binding,
        )
        plan = ops.IndexNLJoin(outer, inner, outer_binding.concat(inner_binding))
        rows = run_op(plan).rows
        assert sorted(r[1] for r in rows) == [2, 5]


class TestAggregation:
    def test_group_by_count_sum(self):
        binding = binding_for()
        out = RowBinding([OutputCol("grp"), OutputCol("n"), OutputCol("total")])
        plan = ops.HashAggregate(
            ops.SeqScan(make_table(ROWS), binding),
            [compile_expr(parse_expression("t.grp"), binding)],
            [
                ops.AggregateSpec("count", None),
                ops.AggregateSpec("sum", compile_expr(parse_expression("t.v"), binding)),
            ],
            out,
        )
        rows = sorted(run_op(plan).rows)
        assert rows == [(1, 2, 30.0), (2, 2, 70.0), (3, 1, 50.0)]

    def test_avg_min_max(self):
        binding = binding_for()
        out = RowBinding([OutputCol("a"), OutputCol("lo"), OutputCol("hi")])
        v = compile_expr(parse_expression("t.v"), binding)
        plan = ops.HashAggregate(
            ops.SeqScan(make_table(ROWS), binding),
            [],
            [
                ops.AggregateSpec("avg", v),
                ops.AggregateSpec("min", v),
                ops.AggregateSpec("max", v),
            ],
            out,
        )
        assert run_op(plan).rows == [(30.0, 10.0, 50.0)]

    def test_scalar_aggregate_on_empty_input(self):
        binding = binding_for()
        out = RowBinding([OutputCol("n"), OutputCol("s")])
        plan = ops.HashAggregate(
            ops.SeqScan(make_table([]), binding),
            [],
            [
                ops.AggregateSpec("count", None),
                ops.AggregateSpec("sum", compile_expr(parse_expression("t.v"), binding)),
            ],
            out,
        )
        assert run_op(plan).rows == [(0, None)]

    def test_group_aggregate_on_empty_input_no_rows(self):
        binding = binding_for()
        out = RowBinding([OutputCol("grp"), OutputCol("n")])
        plan = ops.HashAggregate(
            ops.SeqScan(make_table([]), binding),
            [compile_expr(parse_expression("t.grp"), binding)],
            [ops.AggregateSpec("count", None)],
            out,
        )
        assert run_op(plan).rows == []

    def test_count_expr_skips_nulls(self):
        binding = RowBinding([OutputCol("x", "t")])
        source = ops.Materialized([(1,), (None,), (3,)], binding)
        out = RowBinding([OutputCol("n")])
        plan = ops.HashAggregate(
            source,
            [],
            [ops.AggregateSpec("count", compile_expr(parse_expression("t.x"), binding))],
            out,
        )
        assert run_op(plan).rows == [(2,)]

    def test_having_filters_groups(self):
        binding = binding_for()
        out = RowBinding([OutputCol("grp"), OutputCol("n")])
        having = compile_expr(parse_expression("n > 1"), out)
        plan = ops.HashAggregate(
            ops.SeqScan(make_table(ROWS), binding),
            [compile_expr(parse_expression("t.grp"), binding)],
            [ops.AggregateSpec("count", None)],
            out,
            having=having,
        )
        assert sorted(run_op(plan).rows) == [(1, 2), (2, 2)]


class TestSortDistinctLimit:
    def test_sort_asc(self):
        binding = binding_for()
        plan = ops.Sort(
            ops.SeqScan(make_table([(3, 1, 1.0), (1, 1, 2.0), (2, 1, 3.0)]), binding),
            [compile_expr(parse_expression("t.id"), binding)],
            [False],
        )
        assert [r[0] for r in run_op(plan).rows] == [1, 2, 3]

    def test_sort_desc(self):
        binding = binding_for()
        plan = ops.Sort(
            ops.SeqScan(make_table(ROWS), binding),
            [compile_expr(parse_expression("t.v"), binding)],
            [True],
        )
        assert [r[2] for r in run_op(plan).rows][:2] == [50.0, 40.0]

    def test_sort_multi_key_mixed(self):
        binding = binding_for()
        rows = [(1, 2, 5.0), (2, 1, 5.0), (3, 2, 1.0), (4, 1, 9.0)]
        plan = ops.Sort(
            ops.SeqScan(make_table(rows), binding),
            [
                compile_expr(parse_expression("t.grp"), binding),
                compile_expr(parse_expression("t.v"), binding),
            ],
            [False, True],
        )
        assert [r[0] for r in run_op(plan).rows] == [4, 2, 1, 3]

    def test_sort_nulls_first(self):
        binding = RowBinding([OutputCol("x", "t")])
        source = ops.Materialized([(2,), (None,), (1,)], binding)
        plan = ops.Sort(source, [compile_expr(parse_expression("t.x"), binding)], [False])
        assert run_op(plan).rows == [(None,), (1,), (2,)]

    def test_distinct(self):
        binding = RowBinding([OutputCol("x", "t")])
        source = ops.Materialized([(1,), (2,), (1,)], binding)
        assert sorted(run_op(ops.Distinct(source)).rows) == [(1,), (2,)]

    def test_limit(self):
        binding = binding_for()
        plan = ops.Limit(ops.SeqScan(make_table(ROWS), binding), 2)
        assert len(run_op(plan).rows) == 2

    def test_limit_zero(self):
        binding = binding_for()
        plan = ops.Limit(ops.SeqScan(make_table(ROWS), binding), 0)
        assert run_op(plan).rows == []


class TestSwitchUnion:
    def make(self, selector):
        binding = RowBinding([OutputCol("x")])
        a = ops.Materialized([("a",)], binding)
        b = ops.Materialized([("b",)], binding)
        return ops.SwitchUnion([a, b], selector, binding, label="guard")

    def test_selects_first(self):
        result = run_op(self.make(lambda ctx: 0))
        assert result.rows == [("a",)]
        assert result.context.branches == [("guard", 0)]

    def test_selects_second(self):
        result = run_op(self.make(lambda ctx: 1))
        assert result.rows == [("b",)]

    def test_bad_selector_index(self):
        plan = self.make(lambda ctx: 5)
        with pytest.raises(ExecutionError):
            run_op(plan)

    def test_last_chosen_survives_close(self):
        plan = self.make(lambda ctx: 1)
        run_op(plan)
        assert plan.chosen is None
        assert plan.last_chosen == 1

    def test_untaken_branch_not_opened(self):
        binding = RowBinding([OutputCol("x")])

        class Exploding(ops.PhysicalOperator):
            output = binding

            def open(self, ctx, outer_env=None):
                raise AssertionError("must not be opened")

        good = ops.Materialized([("ok",)], binding)
        plan = ops.SwitchUnion([good, Exploding()], lambda ctx: 0, binding)
        assert run_op(plan).rows == [("ok",)]


class TestRemoteQuery:
    def test_executes_and_records(self):
        binding = RowBinding([OutputCol("x")])
        calls = []

        def remote(sql):
            calls.append(sql)
            return [(1,), (2,)]

        plan = ops.RemoteQuery("SELECT x FROM t", binding, remote)
        result = run_op(plan)
        assert result.rows == [(1,), (2,)]
        assert calls == ["SELECT x FROM t"]
        assert result.context.remote_queries == [("SELECT x FROM t", 2)]


class TestExecutorPhases:
    def test_phase_timings_nonnegative(self):
        result = run_op(ops.SeqScan(make_table(ROWS), binding_for()))
        timings = result.timings
        assert timings.setup >= 0
        assert timings.run >= 0
        assert timings.shutdown >= 0
        assert timings.total == pytest.approx(timings.setup + timings.run + timings.shutdown)

    def test_result_helpers(self):
        result = run_op(ops.SeqScan(make_table(ROWS), binding_for()))
        assert result.columns == ["id", "grp", "v"]
        assert result.column("id") == [1, 2, 3, 4, 5]
        assert result.as_dicts()[0]["v"] == 10.0

    def test_scalar_helper(self):
        binding = RowBinding([OutputCol("x")])
        result = run_op(ops.Materialized([(7,)], binding))
        assert result.scalar() == 7

    def test_scalar_rejects_multirow(self):
        binding = RowBinding([OutputCol("x")])
        result = run_op(ops.Materialized([(7,), (8,)], binding))
        with pytest.raises(ValueError):
            result.scalar()

    def test_explain_renders_tree(self):
        binding = binding_for()
        plan = ops.Filter(
            ops.SeqScan(make_table(ROWS), binding), predicate("t.grp = 1", binding)
        )
        text = plan.explain()
        assert "Filter" in text
        assert "SeqScan(t)" in text
