"""Tests for the cache-side DDL: CREATE CURRENCY REGION and
CREATE MATERIALIZED VIEW ... IN REGION ... AS SELECT ..."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.common.errors import CatalogError, ParseError
from repro.sql import ast
from repro.sql.parser import parse


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE goods (gid INT NOT NULL, kind INT NOT NULL, price FLOAT NOT NULL, "
        "PRIMARY KEY (gid))"
    )
    backend.execute(
        "INSERT INTO goods VALUES (1, 1, 5.0), (2, 1, 50.0), (3, 2, 500.0)"
    )
    backend.refresh_statistics()
    return MTCache(backend)


class TestParsing:
    def test_create_region(self):
        stmt = parse("CREATE CURRENCY REGION cr1 INTERVAL 15 SEC DELAY 5 SEC")
        assert isinstance(stmt, ast.CreateRegion)
        assert stmt.name == "cr1"
        assert stmt.interval == 15.0
        assert stmt.delay == 5.0
        assert stmt.heartbeat is None

    def test_create_region_with_heartbeat_and_units(self):
        stmt = parse(
            "CREATE CURRENCY REGION cr1 INTERVAL 1 MIN DELAY 500 MS HEARTBEAT 2 SEC"
        )
        assert stmt.interval == 60.0
        assert stmt.delay == 0.5
        assert stmt.heartbeat == 2.0

    def test_create_matview(self):
        stmt = parse(
            "CREATE MATERIALIZED VIEW g IN REGION cr1 AS "
            "SELECT gid, price FROM goods WHERE price < 100"
        )
        assert isinstance(stmt, ast.CreateMatview)
        assert stmt.name == "g"
        assert stmt.region == "cr1"

    def test_round_trips(self):
        for sql in (
            "CREATE CURRENCY REGION cr1 INTERVAL 15 SEC DELAY 5 SEC",
            "CREATE MATERIALIZED VIEW g IN REGION cr1 AS SELECT gid FROM goods",
        ):
            stmt = parse(sql)
            assert parse(stmt.to_sql()).to_sql() == stmt.to_sql()

    def test_missing_pieces_rejected(self):
        bad = [
            "CREATE CURRENCY REGION cr1 INTERVAL 15 SEC",
            "CREATE CURRENCY REGION cr1 DELAY 5 SEC INTERVAL 15 SEC",
            "CREATE MATERIALIZED VIEW g AS SELECT gid FROM goods",
            "CREATE MATERIALIZED VIEW g IN REGION r1 SELECT gid FROM goods",
        ]
        for sql in bad:
            with pytest.raises(ParseError):
                parse(sql)


class TestExecution:
    def test_full_ddl_flow(self, cache):
        cache.execute("CREATE CURRENCY REGION fast INTERVAL 8 SEC DELAY 2 SEC HEARTBEAT 1 SEC")
        view = cache.execute(
            "CREATE MATERIALIZED VIEW goods_copy IN REGION fast AS "
            "SELECT gid, kind, price FROM goods"
        )
        assert view.table.row_count == 3
        cache.run_for(9)
        result = cache.execute(
            "SELECT g.gid FROM goods g CURRENCY BOUND 60 SEC ON (g)"
        )
        assert result.plan.summary() == "guarded(goods_copy)"

    def test_star_expansion_in_view_ddl(self, cache):
        cache.execute("CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC")
        view = cache.execute(
            "CREATE MATERIALIZED VIEW all_goods IN REGION r AS SELECT * FROM goods"
        )
        assert view.columns == ["gid", "kind", "price"]

    def test_predicate_view_via_ddl(self, cache):
        cache.execute("CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC")
        view = cache.execute(
            "CREATE MATERIALIZED VIEW cheap IN REGION r AS "
            "SELECT gid, price FROM goods WHERE price < 100"
        )
        assert view.table.row_count == 2

    def test_region_ddl_via_shell(self, cache):
        import io

        from repro.cli import run_script

        out = io.StringIO()
        run_script(
            cache,
            [
                "CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC",
                "CREATE MATERIALIZED VIEW v IN REGION r AS SELECT gid FROM goods",
                "\\regions",
            ],
            out=out,
        )
        assert "v: 3 rows" in out.getvalue()

    def test_unknown_region_rejected(self, cache):
        with pytest.raises(CatalogError):
            cache.execute(
                "CREATE MATERIALIZED VIEW v IN REGION missing AS SELECT gid FROM goods"
            )

    def test_aggregating_view_rejected(self, cache):
        cache.execute("CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC")
        with pytest.raises(CatalogError):
            cache.execute(
                "CREATE MATERIALIZED VIEW v IN REGION r AS "
                "SELECT kind, COUNT(*) AS n FROM goods GROUP BY kind"
            )

    def test_join_view_rejected(self, cache):
        cache.backend.create_table(
            "CREATE TABLE other (id INT NOT NULL, PRIMARY KEY (id))"
        )
        cache.mirror_backend()
        cache.execute("CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC")
        with pytest.raises(CatalogError):
            cache.execute(
                "CREATE MATERIALIZED VIEW v IN REGION r AS "
                "SELECT g.gid FROM goods g, other o WHERE g.gid = o.id"
            )

    def test_expression_items_rejected(self, cache):
        cache.execute("CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC")
        with pytest.raises(CatalogError):
            cache.execute(
                "CREATE MATERIALIZED VIEW v IN REGION r AS "
                "SELECT price * 2 AS p2 FROM goods"
            )

    def test_backend_rejects_cache_ddl(self, cache):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            cache.backend.execute(
                "CREATE CURRENCY REGION r INTERVAL 8 SEC DELAY 2 SEC"
            )
