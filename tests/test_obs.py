"""Tests for the observability subsystem (repro.obs) and the metrics
threaded through the MTCache query path, plus the unified-API redesign
riders: LRU plan-cache eviction and keyword-only constructor knobs."""

import re

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import FallbackPolicy, MTCache
from repro.cli import run_script
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        g.set(3.5)
        assert g.value == 3.5
        g.inc()
        g.dec(0.5)
        assert g.value == 4.0

    def test_histogram_basic_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 15.0
        assert h.mean == 3.0
        assert h.min == 1.0
        assert h.max == 5.0
        assert h.percentile(50) == 3.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 5.0

    def test_histogram_reservoir_is_bounded(self):
        h = Histogram(reservoir_size=8)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000  # exact count survives
        assert len(h._ring) == 8  # reservoir does not grow
        # The ring holds the most recent observations.
        assert h.percentile(0) >= 992.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(99) == 0.0
        assert h.summary()["count"] == 0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        local = reg.counter("q_total", labels={"routing": "local"})
        remote = reg.counter("q_total", labels={"routing": "remote"})
        assert local is not remote
        local.inc()
        assert reg.snapshot() == {
            'q_total{routing="local"}': 1,
            'q_total{routing="remote"}': 0,
        }

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labels={"a": "1", "b": "2"})
        b = reg.counter("x", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")
        with pytest.raises(ValueError):
            reg.histogram("thing", labels={"x": "y"})

    def test_snapshot_histogram_summary(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds").observe(0.25)
        snap = reg.snapshot()
        assert snap["lat_seconds"]["count"] == 1
        assert snap["lat_seconds"]["sum"] == 0.25

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        with reg.span("s"):
            pass
        reg.reset()
        assert reg.snapshot() == {}
        assert len(reg.span_log) == 0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_times_and_records(self):
        reg = MetricsRegistry()
        with reg.span("work") as span:
            pass
        assert span.elapsed >= 0.0
        assert span.parent is None
        assert span.depth == 0
        assert [s.name for s in reg.span_log.recent()] == ["work"]
        assert reg.snapshot()['span_seconds{span="work"}']["count"] == 1

    def test_span_nesting_parent_child(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner") as inner:
                with reg.span("leaf") as leaf:
                    pass
        assert inner.parent == "outer"
        assert inner.depth == 1
        assert leaf.parent == "inner"
        assert leaf.depth == 2
        # Finished innermost-first.
        assert [s.name for s in reg.span_log.recent()] == ["leaf", "inner", "outer"]

    def test_span_stack_unwinds_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("broken"):
                raise RuntimeError("boom")
        assert reg.span_log.stack == []
        with reg.span("after") as span:
            pass
        assert span.parent is None

    def test_span_log_is_bounded(self):
        reg = MetricsRegistry(max_spans=4)
        for i in range(10):
            with reg.span(f"s{i}"):
                pass
        assert len(reg.span_log) == 4
        assert [s.name for s in reg.span_log.recent()] == ["s6", "s7", "s8", "s9"]


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
EXPO_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9].*$'
)


class TestRenderText:
    def test_every_line_is_valid_exposition(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", labels={"kind": "a"}, help="hits by kind").inc(3)
        reg.gauge("lag_seconds", labels={"region": "r1"}).set(1.25)
        reg.histogram("t_seconds").observe(0.5)
        text = reg.render_text()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$", line), line
            else:
                assert EXPO_LINE.match(line), line

    def test_type_and_help_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", help="some hits").inc()
        reg.gauge("lag_seconds").set(2)
        reg.histogram("t_seconds").observe(1.0)
        text = reg.render_text()
        assert "# HELP hits_total some hits" in text
        assert "# TYPE hits_total counter" in text
        assert "# TYPE lag_seconds gauge" in text
        assert "# TYPE t_seconds summary" in text
        assert 't_seconds{quantile="0.5"} 1' in text
        assert "t_seconds_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""


# ----------------------------------------------------------------------
# NullRegistry
# ----------------------------------------------------------------------
class TestNullRegistry:
    def test_all_operations_are_noops(self):
        reg = NullRegistry()
        reg.counter("c", labels={"x": "y"}).inc(5)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(1.0)
        with reg.span("s") as span:
            pass
        assert span.elapsed == 0.0
        assert reg.snapshot() == {}
        assert reg.render_text() == ""

    def test_shared_instance(self):
        assert NULL_REGISTRY.counter("anything") is NULL_REGISTRY.counter("other")


# ----------------------------------------------------------------------
# End-to-end: metrics through the query path
# ----------------------------------------------------------------------
@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


GUARDED = "SELECT x.id, x.v FROM t x CURRENCY BOUND 5 SEC ON (x)"


class TestQueryPathMetrics:
    def test_guarded_query_populates_snapshot(self, cache):
        result = cache.execute(GUARDED)
        assert result.routing == "local"
        snap = cache.metrics.snapshot()
        # Timings: parse + optimize spans, all three execution phases.
        assert snap['span_seconds{span="parse"}']["count"] >= 1
        assert snap['span_seconds{span="optimize"}']["count"] == 1
        for phase in ("setup", "run", "shutdown"):
            assert snap[f'exec_phase_seconds{{phase="{phase}"}}']["count"] == 1
        # Plan cache, routing, guard and branch counters.
        assert snap['plan_cache_events_total{event="misses"}'] == 1
        assert snap['queries_total{routing="local"}'] == 1
        assert snap['currency_guard_total{outcome="pass",view="t_copy"}'] == 1
        assert snap['switchunion_branch_total{branch="local"}'] == 1
        # Per-region staleness gauge and replication counters.
        assert snap['replication_staleness_seconds{region="r1"}'] >= 0.0
        assert snap['replication_refreshes_total{region="r1"}'] >= 1
        assert snap["rows_produced_total"] == 3

    def test_guard_failure_and_remote_routing(self, cache):
        cache.run_for(6.0)  # staleness now exceeds the 5s bound mid-cycle
        result = cache.execute(GUARDED)
        assert result.routing == "remote"
        snap = cache.metrics.snapshot()
        assert snap['currency_guard_total{outcome="fail",view="t_copy"}'] == 1
        assert snap['switchunion_branch_total{branch="remote"}'] == 1
        assert snap['queries_total{routing="remote"}'] == 1

    def test_plan_cache_hits_counted(self, cache):
        cache.execute(GUARDED)
        cache.execute(GUARDED)
        assert cache.plan_cache_stats["hits"] == 1
        assert cache.plan_cache_stats["misses"] == 1

    def test_null_registry_cache_records_nothing(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1, 10)")
        backend.refresh_statistics()
        cache = MTCache(backend, metrics=NullRegistry())
        cache.create_region("r1", 10, 2, heartbeat_interval=1)
        cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
        cache.run_for(11)
        result = cache.execute(GUARDED.replace("5 SEC", "60 SEC"))
        assert result.rows == [(1, 10)]
        assert cache.metrics.snapshot() == {}
        assert cache.plan_cache_stats == {
            "hits": 0, "misses": 0, "invalidations": 0, "evictions": 0,
        }

    def test_cli_metrics_command(self, cache):
        import io

        out = io.StringIO()
        run_script(cache, [GUARDED, "\\metrics"], out=out)
        text = out.getvalue()
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{routing="local"} 1' in text


# ----------------------------------------------------------------------
# LRU plan-cache eviction
# ----------------------------------------------------------------------
class TestPlanCacheLRU:
    def queries(self, n):
        return [
            f"SELECT x.id FROM t x WHERE x.id > {i} CURRENCY BOUND 60 SEC ON (x)"
            for i in range(n)
        ]

    def test_eviction_is_lru_not_fifo(self, cache):
        cache._plan_cache_size = 2
        q0, q1, q2 = self.queries(3)
        plan0 = cache.optimize(q0)
        cache.optimize(q1)
        assert cache.optimize(q0) is plan0  # touch q0: now most recent
        cache.optimize(q2)  # evicts q1 (LRU), NOT q0 (FIFO victim)
        assert list(cache._plan_cache) == [q0, q2]
        assert cache.optimize(q0) is plan0  # still cached
        assert cache.plan_cache_stats["evictions"] == 1

    def test_eviction_counter_accumulates(self, cache):
        cache._plan_cache_size = 1
        for sql in self.queries(4):
            cache.optimize(sql)
        assert cache.plan_cache_stats["evictions"] == 3


# ----------------------------------------------------------------------
# Unified entry point + constructor hygiene
# ----------------------------------------------------------------------
class TestUnifiedAPI:
    def test_execute_select_shim_is_gone(self, cache):
        assert not hasattr(cache, "execute_select")
        result = cache.execute(GUARDED)
        assert len(result.rows) == 3
        assert result.plan.summary() == "guarded(t_copy)"

    def test_execute_does_not_warn(self, cache):
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error", DeprecationWarning)
            result = cache.execute(GUARDED)
        assert len(result.rows) == 3

    def test_query_result_contract(self, cache):
        result = cache.execute(GUARDED)
        assert result.columns == ["id", "v"]
        assert result.routing in ("local", "remote", "mixed")
        assert result.timings.total >= 0.0
        assert result.warnings == []
        assert result.plan is not None

    def test_constructor_knobs_are_keyword_only(self, cache):
        with pytest.raises(TypeError):
            MTCache(cache.backend, None)  # cost_model must be keyword

    def test_fallback_policy_enum_accepted(self, cache):
        c = MTCache(cache.backend, fallback_policy=FallbackPolicy.SERVE_STALE)
        assert c.fallback_policy == "serve_stale"

    def test_bad_policy_rejected_at_construction(self, cache):
        with pytest.raises(ValueError, match="unknown fallback policy"):
            MTCache(cache.backend, fallback_policy="shrug")

    def test_obs_names_reexported(self):
        import repro

        for name in ("MetricsRegistry", "NullRegistry", "Span", "FallbackPolicy",
                     "QueryResult"):
            assert name in repro.__all__
            assert hasattr(repro, name)
