"""Tests for MTCache: shadow DB, guarded execution, plan switching, DML
forwarding and timeline sessions."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.common.errors import CatalogError, ConsistencyError


def make_env(interval=10.0, delay=2.0, heartbeat=1.0, settle=True):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE items (id INT NOT NULL, qty INT NOT NULL, price FLOAT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO items VALUES (1, 5, 10.0), (2, 3, 20.0), (3, 9, 30.0)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", interval, delay, heartbeat_interval=heartbeat)
    cache.create_matview("items_copy", "items", ["id", "qty", "price"], region="r1")
    if settle:
        cache.run_for(interval + heartbeat)
    return backend, cache


class TestShadowDatabase:
    def test_shadow_tables_exist_and_are_empty(self):
        _, cache = make_env()
        entry = cache.catalog.table("items")
        assert entry.shadow
        assert entry.table.row_count == 0

    def test_shadow_stats_reflect_backend(self):
        backend, cache = make_env()
        assert cache.catalog.table("items").stats.row_count == 3

    def test_refresh_shadow_stats(self):
        backend, cache = make_env()
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        cache.refresh_shadow_stats()
        assert cache.catalog.table("items").stats.row_count == 4

    def test_view_requires_region(self):
        _, cache = make_env()
        with pytest.raises(CatalogError):
            cache.create_matview("v2", "items", ["id"], region=None)


class TestGuardedExecution:
    def test_fresh_view_serves_locally(self):
        _, cache = make_env()
        result = cache.execute(
            "SELECT i.id, i.qty FROM items i CURRENCY BOUND 60 SEC ON (i)"
        )
        assert len(result.rows) == 3
        assert result.context.branches == [("items_copy", 0)]
        assert result.context.remote_queries == []

    def test_stale_view_falls_back_to_remote(self):
        backend, cache = make_env(interval=10.0, delay=2.0)
        # Let the view age beyond the bound without propagation.
        cache.run_for(4.0)  # mid-cycle; staleness bound > 3s now
        result = cache.execute(
            "SELECT i.id FROM items i CURRENCY BOUND 3 SEC ON (i)"
        )
        assert result.context.branches == [("items_copy", 1)]
        assert len(result.context.remote_queries) == 1

    def test_remote_fallback_sees_latest_data(self):
        backend, cache = make_env()
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        cache.run_for(4.0)
        result = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 3 SEC ON (i)")
        assert len(result.rows) == 4

    def test_local_view_may_serve_stale_rows_within_bound(self):
        backend, cache = make_env()
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        result = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 600 SEC ON (i)")
        # Bound is loose: local branch used, new row not yet visible.
        assert result.context.branches == [("items_copy", 0)]
        assert len(result.rows) == 3

    def test_no_currency_clause_goes_remote(self):
        _, cache = make_env()
        result = cache.execute("SELECT i.id FROM items i")
        assert result.plan.summary() == "remote"
        assert len(result.context.remote_queries) == 1

    def test_zero_bound_goes_remote(self):
        _, cache = make_env()
        plan = cache.optimize("SELECT i.id FROM items i CURRENCY BOUND 0 SEC ON (i)")
        assert plan.summary() == "remote"

    def test_bound_below_delay_pruned_at_compile_time(self):
        _, cache = make_env(interval=10.0, delay=5.0)
        plan = cache.optimize("SELECT i.id FROM items i CURRENCY BOUND 1 SEC ON (i)")
        assert plan.summary() == "remote"

    def test_unbounded_staleness_unguarded_local(self):
        _, cache = make_env()
        cache.run_for(500.0)
        result = cache.execute(
            "SELECT i.id FROM items i CURRENCY BOUND UNBOUNDED ON (i)"
        )
        # No SwitchUnion at all: pure local plan.
        assert result.context.branches == []
        assert result.context.remote_queries == []
        assert len(result.rows) == 3

    def test_guard_passes_again_after_propagation(self):
        backend, cache = make_env(interval=10.0, delay=2.0)
        cache.run_for(4.0)
        stale = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 3 SEC ON (i)")
        assert stale.context.branches == [("items_copy", 1)]
        # Advance just past the next propagation (agent wakes at t=20 with
        # cutoff 18); at t=20.5 the heartbeat bound is 2.5s < 3s.
        cache.run_for(5.5)
        fresh = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 3 SEC ON (i)")
        assert fresh.context.branches == [("items_copy", 0)]

    def test_view_without_needed_columns_not_matched(self):
        _, cache = make_env()
        # price is not in this narrow view
        cache.create_matview("narrow", "items", ["id", "qty"], region="r1")
        plan = cache.optimize(
            "SELECT i.price FROM items i CURRENCY BOUND 60 SEC ON (i)"
        )
        assert "narrow" not in plan.summary()

    def test_predicate_view_matched_only_with_matching_conjunct(self):
        _, cache = make_env()
        cache.create_matview(
            "cheap", "items", ["id", "price"], predicate="price < 25", region="r1"
        )
        cache.run_for(12.0)
        matching = cache.optimize(
            "SELECT i.id FROM items i WHERE i.price < 25 CURRENCY BOUND 60 SEC ON (i)"
        )
        # Either view works here; the narrow one is cheaper or equal.
        assert "guarded" in matching.summary()
        not_matching = cache.optimize(
            "SELECT i.id, i.price FROM items i CURRENCY BOUND 60 SEC ON (i)"
        )
        assert "cheap" not in not_matching.summary()


class TestDMLForwarding:
    def test_insert_forwarded_to_backend(self):
        backend, cache = make_env()
        cache.execute("INSERT INTO items VALUES (4, 2, 40.0)")
        assert backend.catalog.table("items").table.row_count == 4
        # The cache's shadow stays empty.
        assert cache.catalog.table("items").table.row_count == 0

    def test_update_forwarded(self):
        backend, cache = make_env()
        cache.execute("UPDATE items SET qty = 42 WHERE id = 1")
        result = backend.execute("SELECT i.qty FROM items i WHERE i.id = 1")
        assert result.scalar() == 42

    def test_delete_forwarded(self):
        backend, cache = make_env()
        cache.execute("DELETE FROM items WHERE id = 1")
        assert backend.catalog.table("items").table.row_count == 2

    def test_writes_visible_after_propagation(self):
        _, cache = make_env()
        cache.execute("INSERT INTO items VALUES (4, 2, 40.0)")
        cache.run_for(15.0)
        result = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 60 SEC ON (i)")
        assert len(result.rows) == 4


class TestComplexQueriesShipWhole:
    def test_derived_table_shipped(self):
        _, cache = make_env()
        result = cache.execute(
            "SELECT t.total FROM (SELECT SUM(i.qty) AS total FROM items i) t"
        )
        assert result.rows == [(17,)]

    def test_where_subquery_shipped(self):
        _, cache = make_env()
        result = cache.execute(
            "SELECT i.id FROM items i WHERE EXISTS "
            "(SELECT 1 FROM items j WHERE j.qty > i.qty)"
        )
        assert sorted(r[0] for r in result.rows) == [1, 2]


class TestAggregationOnCache:
    def test_local_aggregation_over_guarded_view(self):
        _, cache = make_env()
        result = cache.execute(
            "SELECT COUNT(*) AS n, SUM(i.qty) AS total FROM items i "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        assert result.rows == [(3, 17)]
        assert result.context.branches == [("items_copy", 0)]

    def test_group_by_on_cache(self):
        _, cache = make_env()
        result = cache.execute(
            "SELECT i.qty, COUNT(*) AS n FROM items i GROUP BY i.qty "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        assert len(result.rows) == 3


class TestTimelineSessions:
    def test_begin_end(self):
        _, cache = make_env()
        cache.execute("BEGIN TIMEORDERED")
        assert cache.session.active
        cache.execute("END TIMEORDERED")
        assert not cache.session.active

    def test_end_without_begin_raises(self):
        _, cache = make_env()
        with pytest.raises(ConsistencyError):
            cache.execute("END TIMEORDERED")

    def test_remote_read_forces_later_queries_remote(self):
        backend, cache = make_env()
        cache.execute("BEGIN TIMEORDERED")
        # First query: forced remote (tight bound) -> watermark = now.
        first = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 0 SEC ON (i)")
        assert first.plan.summary() == "remote"
        # Second query: loose bound, but the local snapshot is older than
        # the watermark, so the guard must choose remote.
        second = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 600 SEC ON (i)")
        assert second.context.branches == [("items_copy", 1)]
        cache.execute("END TIMEORDERED")

    def test_local_read_allowed_when_snapshot_at_watermark(self):
        _, cache = make_env()
        cache.execute("BEGIN TIMEORDERED")
        first = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 600 SEC ON (i)")
        assert first.context.branches == [("items_copy", 0)]
        second = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 600 SEC ON (i)")
        assert second.context.branches == [("items_copy", 0)]
        cache.execute("END TIMEORDERED")

    def test_read_your_writes_via_timeline(self):
        backend, cache = make_env()
        cache.execute("BEGIN TIMEORDERED")
        cache.execute("SELECT i.id FROM items i CURRENCY BOUND 0 SEC ON (i)")
        cache.execute("INSERT INTO items VALUES (4, 2, 40.0)")
        # Next read goes remote (watermark ahead of the local snapshot) and
        # therefore sees the write.
        result = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 600 SEC ON (i)")
        assert len(result.rows) == 4
        cache.execute("END TIMEORDERED")

    def test_without_timeline_writes_may_be_invisible(self):
        # The §2.3 motivation: no timeline bracket -> a later query may use
        # a replica that has not yet seen the session's own write.
        backend, cache = make_env()
        cache.execute("INSERT INTO items VALUES (4, 2, 40.0)")
        result = cache.execute("SELECT i.id FROM items i CURRENCY BOUND 600 SEC ON (i)")
        assert len(result.rows) == 3


class TestJoinsOnCache:
    def test_two_views_in_one_region_join_locally(self):
        backend, cache = make_env()
        cache.create_matview("items2", "items", ["id", "price"], region="r1")
        cache.run_for(12.0)
        result = cache.execute(
            "SELECT a.id, b.price FROM items a, items b WHERE a.id = b.id "
            "CURRENCY BOUND 60 SEC ON (a, b)"
        )
        assert len(result.rows) == 3
        assert result.context.remote_queries == []

    def test_single_class_across_regions_goes_remote(self):
        backend, cache = make_env()
        cache.create_region("r2", 10.0, 2.0)
        cache.create_matview("items_r2", "items", ["id", "price"], region="r2")
        cache.run_for(12.0)
        plan = cache.optimize(
            "SELECT a.id, b.price FROM items a, items b WHERE a.id = b.id "
            "CURRENCY BOUND 60 SEC ON (a, b)"
        )
        # items_copy (r1) and items_r2 (r2) can never be mutually
        # consistent; with only one view per operand candidate... both
        # operands CAN use views from the same region here, so check the
        # chosen plan satisfies the class either way: all-local-one-region
        # or remote.
        summary = plan.summary()
        assert "remote" in summary or summary.count("guarded") == 2
