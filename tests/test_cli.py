"""Tests for the interactive shell and EXPLAIN support."""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.cli import Shell, run_script


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


def run(cache, *lines):
    out = io.StringIO()
    run_script(cache, lines, out=out)
    return out.getvalue()


class TestExplainStatement:
    def test_explain_on_cache(self, cache):
        result = cache.execute("EXPLAIN SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)")
        text = "\n".join(line for (line,) in result.rows)
        assert "guarded(t_copy)" in text
        assert "SwitchUnion" in text
        assert "constraint:" in text

    def test_explain_on_backend(self, cache):
        result = cache.backend.execute("EXPLAIN SELECT x.id FROM t x WHERE x.id = 1")
        text = "\n".join(line for (line,) in result.rows)
        assert "estimated cost" in text

    def test_explain_does_not_execute(self, cache):
        result = cache.execute("EXPLAIN SELECT x.id FROM t x")
        assert result.context.remote_queries == []

    def test_explain_naive_path_on_backend(self, cache):
        result = cache.backend.execute(
            "EXPLAIN SELECT s.id FROM (SELECT id FROM t) s"
        )
        text = "\n".join(line for (line,) in result.rows)
        assert "naive" in text

    def test_explain_roundtrip_sql(self, cache):
        from repro.sql.parser import parse

        stmt = parse("EXPLAIN SELECT x.id FROM t x")
        assert parse(stmt.to_sql()).to_sql() == stmt.to_sql()


class TestShellSQL:
    def test_select_prints_rows_and_plan(self, cache):
        text = run(cache, "SELECT x.id, x.v FROM t x CURRENCY BOUND 60 SEC ON (x)")
        assert "2 row(s)" in text
        assert "plan: guarded(t_copy)" in text
        assert "t_copy->local" in text

    def test_dml_prints_count(self, cache):
        text = run(cache, "INSERT INTO t VALUES (3, 30)")
        assert "1 row(s) affected" in text

    def test_error_reported_not_raised(self, cache):
        text = run(cache, "SELECT nonsense FROM missing")
        assert "error:" in text

    def test_timeordered_bracket(self, cache):
        text = run(cache, "BEGIN TIMEORDERED", "END TIMEORDERED")
        assert text.count("ok") == 2

    def test_explain_via_shell(self, cache):
        text = run(cache, "EXPLAIN SELECT x.id FROM t x")
        assert "summary: remote" in text


class TestShellMeta:
    def test_help(self, cache):
        assert "\\advance" in run(cache, "\\help")

    def test_now_and_advance(self, cache):
        text = run(cache, "\\now", "\\advance 5", "\\now")
        assert "simulated time: 11" in text
        assert "simulated time: 16" in text

    def test_regions(self, cache):
        text = run(cache, "\\regions")
        assert "r1:" in text
        assert "t_copy" in text

    def test_views(self, cache):
        text = run(cache, "\\views")
        assert "t_copy = SELECT id, v FROM t" in text

    def test_tables(self, cache):
        text = run(cache, "\\tables")
        assert "t: 2 rows" in text

    def test_plan_shorthand(self, cache):
        text = run(cache, "\\plan SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)")
        assert "guarded(t_copy)" in text

    def test_unknown_command(self, cache):
        assert "unknown command" in run(cache, "\\frobnicate")

    def test_quit_stops_processing(self, cache):
        text = run(cache, "\\quit", "\\now")
        assert "simulated time" not in text

    def test_blank_lines_ignored(self, cache):
        shell = Shell(cache, out=io.StringIO())
        assert shell.handle("") is True


class TestStatusAPI:
    def test_status_shape(self, cache):
        status = cache.status()
        assert "r1" in status
        info = status["r1"]
        assert info["update_interval"] == 10
        assert info["staleness_bound"] is not None
        assert info["views"]["t_copy"]["rows"] == 2

    def test_status_ages_grow_with_time(self, cache):
        before = cache.status()["r1"]["views"]["t_copy"]["snapshot_age"]
        cache.run_for(3.0)
        after = cache.status()["r1"]["views"]["t_copy"]["snapshot_age"]
        assert after > before
