"""Tests for heartbeats, distribution agents and the currency sawtooth."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.common.errors import ReplicationError


def make_env(interval=10.0, delay=2.0, heartbeat=1.0):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE items (id INT NOT NULL, qty INT NOT NULL, price FLOAT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO items VALUES (1, 5, 10.0), (2, 3, 20.0), (3, 9, 30.0)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", interval, delay, heartbeat_interval=heartbeat)
    view = cache.create_matview("items_copy", "items", ["id", "qty", "price"], region="r1")
    return backend, cache, view


class TestSubscription:
    def test_initial_population(self):
        _, _, view = make_env()
        assert view.table.row_count == 3

    def test_initial_snapshot_metadata(self):
        backend, _, view = make_env()
        assert view.applied_txn == backend.txn_manager.last_txn_id
        assert view.snapshot_time == backend.clock.now()

    def test_view_requires_pk_column(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1, 2)")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("r1", 10, 2)
        with pytest.raises(ReplicationError):
            cache.create_matview("bad", "t", ["v"], region="r1")

    def test_view_with_predicate_filters_population(self):
        backend, cache, _ = make_env()
        view = cache.create_matview(
            "cheap", "items", ["id", "price"], predicate="price < 25", region="r1"
        )
        assert view.table.row_count == 2


class TestPropagation:
    def test_insert_propagates_after_interval_plus_delay(self):
        backend, cache, view = make_env(interval=10.0, delay=2.0)
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        assert view.table.row_count == 3  # not yet propagated
        # Agent wakes at t=10 and applies txns committed before t=8.
        cache.run_for(10.0)
        assert view.table.row_count == 4

    def test_delay_withholds_recent_commits(self):
        backend, cache, view = make_env(interval=10.0, delay=2.0)
        cache.run_for(9.5)  # just before the wake at t=10
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")  # commits at 9.5
        cache.run_for(0.5)  # agent wakes at t=10, cutoff = 8 < 9.5
        assert view.table.row_count == 3
        cache.run_for(10.0)  # next wake at t=20, cutoff = 18
        assert view.table.row_count == 4

    def test_update_propagates(self):
        backend, cache, view = make_env()
        backend.execute("UPDATE items SET qty = 99 WHERE id = 2")
        cache.run_for(15.0)
        rows = dict((r[0], r[1]) for _, r in view.table.scan())
        assert rows[2] == 99

    def test_delete_propagates(self):
        backend, cache, view = make_env()
        backend.execute("DELETE FROM items WHERE id = 1")
        cache.run_for(15.0)
        assert view.table.row_count == 2

    def test_commit_order_preserved(self):
        backend, cache, view = make_env()
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        backend.execute("UPDATE items SET qty = 7 WHERE id = 4")
        backend.execute("DELETE FROM items WHERE id = 4")
        cache.run_for(15.0)
        assert view.table.row_count == 3

    def test_predicate_view_update_moves_row_in_and_out(self):
        backend, cache, _ = make_env()
        view = cache.create_matview(
            "cheap", "items", ["id", "price"], predicate="price < 25", region="r1"
        )
        assert view.table.row_count == 2
        backend.execute("UPDATE items SET price = 5.0 WHERE id = 3")  # enters
        backend.execute("UPDATE items SET price = 99.0 WHERE id = 1")  # leaves
        cache.run_for(15.0)
        ids = sorted(r[0] for _, r in view.table.scan())
        assert ids == [2, 3]

    def test_snapshot_time_advances_even_without_changes(self):
        _, cache, view = make_env(interval=10.0, delay=2.0)
        t0 = view.snapshot_time
        cache.run_for(20.0)
        assert view.snapshot_time == 20.0 - 2.0
        assert view.snapshot_time > t0

    def test_propagate_returns_applied_count(self):
        backend, cache, view = make_env()
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        backend.execute("INSERT INTO items VALUES (5, 1, 50.0)")
        agent = cache.agents["r1"]
        applied = agent.propagate(cutoff=backend.clock.now())
        assert applied == 2


class TestRegionConsistency:
    def test_views_in_region_share_snapshot(self):
        backend, cache, view = make_env()
        view2 = cache.create_matview("items2", "items", ["id", "qty"], region="r1")
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        cache.run_for(25.0)
        assert view.applied_txn == view2.applied_txn
        assert view.snapshot_time == view2.snapshot_time

    def test_subscribe_resyncs_existing_views(self):
        backend, cache, view = make_env()
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        # Subscribing a new view forces the region forward to "now" so both
        # views stay mutually consistent.
        view2 = cache.create_matview("items2", "items", ["id", "qty"], region="r1")
        assert view.table.row_count == 4
        assert view2.table.row_count == 4


class TestHeartbeat:
    def test_heartbeat_row_created(self):
        backend, _, _ = make_env()
        hb = backend.catalog.table("heartbeat").table
        assert hb.row_count == 1

    def test_heartbeat_propagates_to_local_table(self):
        _, cache, _ = make_env(interval=10.0, delay=2.0, heartbeat=1.0)
        agent = cache.agents["r1"]
        cache.run_for(10.0)  # beats at 1..10; agent wakes at 10, cutoff 8
        assert agent.local_heartbeat_value() == 8.0

    def test_staleness_bound(self):
        _, cache, _ = make_env(interval=10.0, delay=2.0, heartbeat=1.0)
        agent = cache.agents["r1"]
        cache.run_for(10.0)
        assert agent.staleness_bound() == pytest.approx(2.0)
        cache.run_for(5.0)  # no propagation until t=20
        assert agent.staleness_bound() == pytest.approx(7.0)

    def test_staleness_bound_is_conservative(self):
        # The heartbeat bound must never be smaller than the true staleness.
        _, cache, view = make_env(interval=7.0, delay=3.0, heartbeat=2.0)
        agent = cache.agents["r1"]
        for _ in range(10):
            cache.run_for(3.3)
            bound = agent.staleness_bound()
            if bound is None:
                continue
            true_staleness = cache.clock.now() - view.snapshot_time
            assert bound >= true_staleness - 1e-9

    def test_sawtooth_cycle(self):
        # Figure 3.2: right after propagation staleness = d, grows linearly
        # to d + f, then drops back to d.
        _, cache, view = make_env(interval=10.0, delay=2.0)
        cache.run_for(10.0)
        low = cache.clock.now() - view.snapshot_time
        cache.run_for(9.9)
        high = cache.clock.now() - view.snapshot_time
        cache.run_for(0.1)
        reset = cache.clock.now() - view.snapshot_time
        assert low == pytest.approx(2.0)
        assert high == pytest.approx(11.9)
        assert reset == pytest.approx(2.0)


class TestReplaySafety:
    def test_reapplying_applied_prefix_is_a_noop(self):
        # Satellite regression: a restarted agent that lost its cutoffs
        # replays the whole log; idempotent application must leave the
        # view byte-identical — no duplicate inserts, no lost deletes.
        backend, cache, view = make_env(interval=10.0, delay=2.0)
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        backend.execute("UPDATE items SET qty = 7 WHERE id = 2")
        backend.execute("DELETE FROM items WHERE id = 3")
        cache.run_for(10.0)
        agent = cache.agents["r1"]
        before = sorted(values for _, values in view.table.scan())
        assert len(before) == 3  # 1, 2 (qty=7), 4

        # Simulate losing the resume cutoffs entirely.
        agent.applied_txn = 0
        agent.snapshot_time = 0.0
        reapplied = agent.propagate(cutoff=cache.clock.now())
        after = sorted(values for _, values in view.table.scan())
        assert after == before
        assert reapplied > 0  # the prefix really was replayed

    def test_replay_with_predicate_view(self):
        backend, cache, _ = make_env(interval=10.0, delay=2.0)
        view = cache.create_matview(
            "cheap", "items", ["id", "price"], predicate="price < 25",
            region="r1",
        )
        backend.execute("UPDATE items SET price = 5.0 WHERE id = 3")  # moves in
        backend.execute("UPDATE items SET price = 90.0 WHERE id = 1")  # moves out
        cache.run_for(10.0)
        agent = cache.agents["r1"]
        before = sorted(values for _, values in view.table.scan())
        agent.applied_txn = 0
        agent.snapshot_time = 0.0
        agent.propagate(cutoff=cache.clock.now())
        assert sorted(values for _, values in view.table.scan()) == before


class TestCheckpoints:
    def test_agent_checkpoints_every_propagation(self):
        backend, cache, _ = make_env(interval=10.0, delay=2.0)
        checkpoint = cache.checkpoints.load("r1")
        assert checkpoint is not None  # saved at subscribe time
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        cache.run_for(10.0)
        agent = cache.agents["r1"]
        checkpoint = cache.checkpoints.load("r1")
        assert checkpoint.applied_txn == agent.applied_txn
        assert checkpoint.snapshot_time == pytest.approx(agent.snapshot_time)
        assert cache.checkpoints.saves >= 2

    def test_resume_from_checkpoint_restores_cutoffs(self):
        from repro.replication import DistributionAgent

        backend, cache, view = make_env(interval=10.0, delay=2.0)
        backend.execute("INSERT INTO items VALUES (4, 1, 40.0)")
        cache.run_for(10.0)
        old = cache.agents["r1"]

        standby = DistributionAgent(
            cache.catalog.region("r1"), backend.catalog,
            backend.txn_manager.log, cache.catalog, cache.clock,
            checkpoints=cache.checkpoints,
        )
        standby.adopt(old)
        checkpoint = standby.resume_from_checkpoint()
        assert checkpoint.applied_txn == old.applied_txn
        assert standby.applied_txn == old.applied_txn
        # Replaying up to the checkpointed snapshot applies nothing...
        assert standby.propagate(cutoff=standby.snapshot_time) == 0
        # ...and catching up to "now" only takes the log *tail* (the
        # heartbeats committed since), leaving the view rows untouched.
        before = sorted(values for _, values in view.table.scan())
        standby.propagate(cutoff=cache.clock.now())
        assert sorted(values for _, values in view.table.scan()) == before
        assert view.table.row_count == 4

    def test_clear_checkpoints(self):
        from repro.replication import CheckpointStore

        store = CheckpointStore()
        store.save("a", 3, 1.5)
        store.save("b", 9, 2.5)
        assert "a" in store and len(store) == 2
        store.clear("a")
        assert store.load("a") is None and len(store) == 1
        store.clear()
        assert len(store) == 0
