"""Coverage for remaining corners: CLI main loop, checker modes, executor
timing hooks, constraint helpers, and stacked components."""

import io

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache


def make_cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


class TestCliMain:
    def test_main_loop_quits(self, monkeypatch, capsys):
        import repro.cli as cli

        inputs = iter(["\\now", "\\quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(inputs))
        monkeypatch.setattr(
            "repro.workloads.experiment.build_paper_setup",
            lambda **kw: type("S", (), {"cache": make_cache()})(),
        )
        assert cli.main() == 0
        out = capsys.readouterr().out
        assert "simulated time" in out

    def test_main_loop_handles_eof(self, monkeypatch, capsys):
        import repro.cli as cli

        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        monkeypatch.setattr(
            "repro.workloads.experiment.build_paper_setup",
            lambda **kw: type("S", (), {"cache": make_cache()})(),
        )
        assert cli.main() == 0


class TestCheckerModes:
    def test_shallow_mode_skips_equivalence(self):
        from repro.semantics.checker import ResultChecker

        cache = make_cache()
        # Corrupt the view: shallow mode won't notice, deep mode will.
        view = cache.catalog.matview("t_copy")
        rid = view.table.pk_lookup((1,))
        view.table.update(rid, (1, 777))
        sql = "SELECT x.id, x.v FROM t x CURRENCY BOUND 600 SEC ON (x)"
        result = cache.execute(sql)
        assert ResultChecker(cache, deep=False).check(sql, result).ok
        assert not ResultChecker(cache, deep=True).check(sql, result).ok

    def test_order_by_query_checks_cardinality_only(self):
        from repro.semantics.checker import ResultChecker

        cache = make_cache()
        sql = (
            "SELECT x.id FROM t x CURRENCY BOUND 600 SEC ON (x) "
        )
        sql_ordered = (
            "SELECT x.id FROM t x ORDER BY x.id LIMIT 2 "
        )
        result = cache.execute(sql_ordered)
        report = ResultChecker(cache).check(sql_ordered, result)
        assert report.ok

    def test_derived_table_queries_skip_deep_check(self):
        from repro.semantics.checker import ResultChecker

        cache = make_cache()
        sql = "SELECT s.id FROM (SELECT id FROM t) s"
        result = cache.execute(sql)
        report = ResultChecker(cache).check(sql, result)
        assert report.ok  # shallow checks only; no crash


class TestExecutorHooks:
    def test_custom_timer(self):
        from repro.engine import Materialized, OutputCol, RowBinding
        from repro.engine.executor import Executor

        ticks = iter(range(100))
        executor = Executor(timer=lambda: float(next(ticks)))
        binding = RowBinding([OutputCol("x")])
        result = executor.execute(Materialized([(1,)], binding))
        assert result.timings.setup == 1.0
        assert result.timings.run == 1.0
        assert result.timings.shutdown == 1.0


class TestConstraintHelpers:
    def test_repr_readable(self):
        from repro.cc.constraint import CCConstraint, CCTuple

        constraint = CCConstraint([CCTuple(600.0, ["b", "r"])])
        text = repr(constraint)
        assert "600" in text
        assert "b" in text and "r" in text

    def test_tuple_equality_ignores_by_columns(self):
        from repro.cc.constraint import CCTuple
        from repro.sql.ast import ColumnRef

        a = CCTuple(5.0, ["x"], by_columns=(ColumnRef("k"),))
        b = CCTuple(5.0, ["x"])
        assert a == b
        assert hash(a) == hash(b)

    def test_operands_property(self):
        from repro.cc.constraint import CCConstraint, CCTuple

        constraint = CCConstraint([CCTuple(1.0, ["a"]), CCTuple(2.0, ["b", "c"])])
        assert constraint.operands == {"a", "b", "c"}


class TestStackedComponents:
    def test_result_cache_over_mtcache_with_staleness(self):
        from repro.resultcache import ResultCache

        cache = make_cache()
        rc = ResultCache(cache)
        sql = "SELECT x.id, x.v FROM t x CURRENCY BOUND 30 SEC ON (x)"
        rc.execute(sql)
        cache.backend.execute("UPDATE t SET v = 99 WHERE id = 1")
        # Within the result cache's bound: reuse.
        assert rc.execute(sql).rows == rc.execute(sql).rows
        assert rc.stats["hits"] == 2
        # Age the entry beyond the bound: recompute through MTCache, which
        # itself applies its currency machinery.
        cache.run_for(31.0)
        fresh = rc.execute(sql)
        assert rc.stats["recomputes"] == 1
        assert (1, 99) in fresh.rows

    def test_conformance_harness_over_ddl_built_cache(self):
        from repro.semantics.conformance import ConformanceHarness

        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE kv (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
        )
        rows = ", ".join(f"({i}, {i})" for i in range(1, 16))
        backend.execute(f"INSERT INTO kv VALUES {rows}")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.execute("CREATE CURRENCY REGION r INTERVAL 6 SEC DELAY 1 SEC HEARTBEAT 1 SEC")
        cache.execute("CREATE MATERIALIZED VIEW kv_c IN REGION r AS SELECT * FROM kv")
        cache.run_for(7)
        outcome = ConformanceHarness(cache, tables=["kv"], seed=55).run(steps=80)
        assert outcome.ok, outcome.failures


class TestWorkloadQueriesHelpers:
    def test_acctbal_ranges_scale_free(self):
        from repro.workloads.queries import _acctbal_range, Q6_FRACTION, Q7_FRACTION

        a6, b6 = _acctbal_range(Q6_FRACTION)
        a7, b7 = _acctbal_range(Q7_FRACTION)
        assert b6 - a6 < b7 - a7
        assert a6 == a7 == 500.0

    def test_k_for_fraction_monotone(self):
        from repro.workloads.queries import _k_for

        assert _k_for(0.001) < _k_for(0.2) < _k_for(1.0)


class TestBackendEstimateFallback:
    def test_complex_query_estimate_defaults(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1)")
        backend.refresh_statistics()
        cost, rows, width = backend.estimate(
            "SELECT s.id FROM (SELECT id FROM t) s"
        )
        assert cost > 0 and rows > 0 and width > 0
