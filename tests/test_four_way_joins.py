"""Stress tests: four-operand join enumeration on both servers."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache


@pytest.fixture(scope="module")
def backend():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE a (ak INT NOT NULL, av INT NOT NULL, PRIMARY KEY (ak))"
    )
    backend.create_table(
        "CREATE TABLE b (bk INT NOT NULL, ak INT NOT NULL, bv INT NOT NULL, PRIMARY KEY (bk))"
    )
    backend.create_table(
        "CREATE TABLE c (ck INT NOT NULL, bk INT NOT NULL, cv INT NOT NULL, PRIMARY KEY (ck))"
    )
    backend.create_table(
        "CREATE TABLE d (dk INT NOT NULL, ck INT NOT NULL, dv INT NOT NULL, PRIMARY KEY (dk))"
    )
    # Keep n small: the naive comparison path materializes the full cross
    # product (n * 2n * n * n rows) before filtering.
    n = 14
    backend.execute(
        "INSERT INTO a VALUES " + ", ".join(f"({i}, {i % 5})" for i in range(1, n + 1))
    )
    backend.execute(
        "INSERT INTO b VALUES "
        + ", ".join(f"({i}, {1 + i % n}, {i % 7})" for i in range(1, 2 * n + 1))
    )
    backend.execute(
        "INSERT INTO c VALUES "
        + ", ".join(f"({i}, {1 + i % (2 * n)}, {i % 3})" for i in range(1, n + 1))
    )
    backend.execute(
        "INSERT INTO d VALUES "
        + ", ".join(f"({i}, {1 + i % n}, {i})" for i in range(1, n + 1))
    )
    backend.refresh_statistics()
    return backend


CHAIN = (
    "SELECT a.ak, b.bk, c.ck, d.dk FROM a, b, c, d "
    "WHERE a.ak = b.ak AND b.bk = c.bk AND c.ck = d.ck"
)


def naive_rows(backend, sql):
    from repro.engine.executor import ExecutionContext
    from repro.sql.parser import parse

    root, _, _ = backend._build_naive(parse(sql))
    ctx = ExecutionContext(clock=backend.clock)
    return backend.executor.execute(root, ctx=ctx).rows


class TestFourWayJoins:
    def test_chain_join_matches_naive(self, backend):
        optimized = backend.execute(CHAIN).rows
        assert sorted(optimized) == sorted(naive_rows(backend, CHAIN))
        assert len(optimized) > 0

    def test_chain_with_filters(self, backend):
        sql = CHAIN + " AND a.av = 2 AND d.dv < 30"
        assert sorted(backend.execute(sql).rows) == sorted(naive_rows(backend, sql))

    def test_star_join(self, backend):
        sql = (
            "SELECT b.bk, c.ck, d.dk FROM b, c, d "
            "WHERE b.bk = c.bk AND b.bk = d.dk AND b.bv = 1"
        )
        assert sorted(backend.execute(sql).rows) == sorted(naive_rows(backend, sql))

    def test_aggregate_over_four_way(self, backend):
        sql = (
            "SELECT a.av, COUNT(*) AS n FROM a, b, c, d "
            "WHERE a.ak = b.ak AND b.bk = c.bk AND c.ck = d.ck GROUP BY a.av"
        )
        optimized = dict(backend.execute(sql).rows)
        from collections import Counter

        naive = naive_rows(backend, sql)
        assert optimized == dict(naive)

    def test_optimization_time_is_sane(self, backend):
        import time

        start = time.perf_counter()
        backend.optimize(CHAIN)
        assert time.perf_counter() - start < 2.0


class TestFourWayOnCache:
    def test_all_local_four_way(self, backend):
        cache = MTCache(backend)
        cache.create_region("r", 10, 2, heartbeat_interval=1)
        for name, cols in (
            ("a_c", ["ak", "av"]),
            ("b_c", ["bk", "ak", "bv"]),
            ("c_c", ["ck", "bk", "cv"]),
            ("d_c", ["dk", "ck", "dv"]),
        ):
            cache.create_matview(name, name[0], cols, region="r")
        cache.run_for(11)
        sql = CHAIN + " CURRENCY BOUND 600 SEC ON (a), 600 SEC ON (b), " \
                      "600 SEC ON (c), 600 SEC ON (d)"
        result = cache.execute(sql)
        assert result.context.remote_queries == []
        assert sorted(result.rows) == sorted(backend.execute(CHAIN).rows)

    def test_single_class_four_way_one_region_local(self, backend):
        cache = MTCache(backend)
        # The module-scoped back-end is shared: a fresh region id avoids a
        # heartbeat-row collision with the previous test's cache.
        cache.create_region("r2", 10, 2, heartbeat_interval=1)
        for name, cols in (
            ("a_c", ["ak", "av"]),
            ("b_c", ["bk", "ak", "bv"]),
            ("c_c", ["ck", "bk", "cv"]),
            ("d_c", ["dk", "ck", "dv"]),
        ):
            cache.create_matview(name, name[0], cols, region="r2")
        cache.run_for(11)
        # One consistency class across all four: a single region satisfies it.
        sql = CHAIN + " CURRENCY BOUND 600 SEC ON (a, b, c, d)"
        result = cache.execute(sql)
        assert sorted(result.rows) == sorted(backend.execute(CHAIN).rows)
        from repro.semantics.checker import ResultChecker

        assert ResultChecker(cache).check(sql, result).ok
