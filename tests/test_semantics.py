"""Tests for the appendix semantics model and the result checker."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.semantics.checker import ResultChecker
from repro.semantics.model import (
    HistoryView,
    currency,
    delta_consistency_bound,
    distance,
    is_snapshot_consistent,
    stale_point,
    wall_clock_currency,
    xtime,
)


def make_history():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10)")  # txn 1
    backend.clock.advance(5.0)
    backend.execute("UPDATE t SET v = 11 WHERE id = 1")  # txn 2
    backend.clock.advance(5.0)
    backend.execute("INSERT INTO t VALUES (2, 20)")  # txn 3
    backend.clock.advance(5.0)
    backend.execute("UPDATE t SET v = 12 WHERE id = 1")  # txn 4
    return backend, HistoryView(backend.txn_manager.log)


class TestHistoryView:
    def test_last_txn(self):
        _, history = make_history()
        assert history.last_txn == 4

    def test_commit_time_of(self):
        _, history = make_history()
        assert history.commit_time_of(1) == 0.0
        assert history.commit_time_of(2) == 5.0
        assert history.commit_time_of(99) is None

    def test_last_txn_at_or_before(self):
        _, history = make_history()
        assert history.last_txn_at_or_before(0.0) == 1
        assert history.last_txn_at_or_before(7.0) == 2
        assert history.last_txn_at_or_before(100.0) == 4

    def test_snapshot_reconstruction(self):
        _, history = make_history()
        assert history.snapshot("t", up_to_txn=1) == {(1,): (1, 10)}
        assert history.snapshot("t", up_to_txn=3) == {(1,): (1, 11), (2,): (2, 20)}
        assert history.snapshot("t")[(1,)] == (1, 12)

    def test_snapshot_with_delete(self):
        backend, _ = make_history()
        backend.execute("DELETE FROM t WHERE id = 2")
        history = HistoryView(backend.txn_manager.log)
        assert (2,) not in history.snapshot("t")
        assert (2,) in history.snapshot("t", up_to_txn=4)

    def test_modifications_of(self):
        _, history = make_history()
        assert history.modifications_of("t", (1,)) == [1, 2, 4]


class TestAppendixFunctions:
    def test_xtime(self):
        _, history = make_history()
        assert xtime(history, "t", (1,)) == 4
        assert xtime(history, "t", (1,), up_to_txn=3) == 2
        assert xtime(history, "t", (9,)) == 0

    def test_stale_point(self):
        _, history = make_history()
        # Copy synced at txn 2: first later modification is txn 4.
        assert stale_point(history, "t", (1,), sync_txn=2) == 4
        # Copy synced at txn 4 is current: stale point = n by convention.
        assert stale_point(history, "t", (1,), sync_txn=4) == 4

    def test_currency_transaction_time(self):
        _, history = make_history()
        assert currency(history, "t", (1,), sync_txn=2) == 0  # stale at n itself
        assert currency(history, "t", (1,), sync_txn=1, up_to_txn=4) == 2

    def test_wall_clock_currency_current_copy(self):
        _, history = make_history()
        assert wall_clock_currency(history, "t", (1,), sync_txn=4, at_time=20.0) == 0.0

    def test_wall_clock_currency_stale_copy(self):
        _, history = make_history()
        # Synced at txn 2 (t=5); modified again by txn 4 at t=15.
        assert wall_clock_currency(history, "t", (1,), sync_txn=2, at_time=20.0) == 5.0

    def test_wall_clock_currency_untouched_object(self):
        _, history = make_history()
        # Row 2 was never modified after insert (txn 3).
        assert wall_clock_currency(history, "t", (2,), sync_txn=3, at_time=50.0) == 0.0

    def test_distance(self):
        _, history = make_history()
        assert distance(history, 2, 4) == 2
        assert distance(history, 4, 2) == 2
        assert distance(history, 3, 3) == 0

    def test_delta_consistency_bound(self):
        assert delta_consistency_bound([3, 5, 4]) == 2
        assert delta_consistency_bound([7]) == 0

    def test_delta_consistency_empty_raises(self):
        with pytest.raises(Exception):
            delta_consistency_bound([])

    def test_snapshot_consistency_check(self):
        _, history = make_history()
        good = [("t", (1,), (1, 11), 2), ("t", (2,), None, 2)]
        # Row (2,) does not exist at txn 2 -> value None matches get().
        assert is_snapshot_consistent(history, good, up_to_txn=2)
        bad = [("t", (1,), (1, 10), 2)]
        assert not is_snapshot_consistent(history, bad, up_to_txn=2)


class TestResultChecker:
    def make_cache(self):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("r1", 10.0, 2.0, heartbeat_interval=1.0)
        cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
        cache.run_for(11.0)
        return backend, cache

    def test_local_result_passes(self):
        _, cache = self.make_cache()
        sql = "SELECT t.id, t.v FROM t CURRENCY BOUND 60 SEC ON (t)"
        result = cache.execute(sql)
        report = ResultChecker(cache).check(sql, result)
        assert report.ok, report.violations

    def test_remote_result_passes(self):
        _, cache = self.make_cache()
        sql = "SELECT t.id, t.v FROM t"
        result = cache.execute(sql)
        report = ResultChecker(cache).check(sql, result)
        assert report.ok

    def test_stale_local_read_within_bound_passes(self):
        backend, cache = self.make_cache()
        backend.execute("UPDATE t SET v = 99 WHERE id = 1")
        sql = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
        result = cache.execute(sql)
        # Result is stale (v=10) but within bound and snapshot-equivalent.
        assert (1, 10) in result.rows
        report = ResultChecker(cache).check(sql, result)
        assert report.ok, report.violations

    def test_sources_traced(self):
        _, cache = self.make_cache()
        sql = "SELECT t.id FROM t CURRENCY BOUND 60 SEC ON (t)"
        result = cache.execute(sql)
        report = ResultChecker(cache).check(sql, result)
        assert report.sources["t"].kind == "view"

    def test_checker_catches_fabricated_violation(self):
        # Force a wrong result by corrupting the local view, then verify
        # the deep equivalence check notices.
        backend, cache = self.make_cache()
        view = cache.catalog.matview("t_copy")
        rid = view.table.pk_lookup((1,))
        view.table.update(rid, (1, 777))
        sql = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
        result = cache.execute(sql)
        report = ResultChecker(cache).check(sql, result)
        assert not report.ok
        assert report.violations[0].kind == "equivalence"

    def test_checker_catches_currency_violation(self):
        # Fake a source older than the bound by rewinding view metadata.
        backend, cache = self.make_cache()
        sql = "SELECT t.id, t.v FROM t CURRENCY BOUND 600 SEC ON (t)"
        result = cache.execute(sql)
        cache.clock.advance(10_000.0)
        report = ResultChecker(cache, deep=False).check(sql, result)
        assert not report.ok
        assert report.violations[0].kind == "currency"

    def test_join_consistency_check(self):
        backend, cache = self.make_cache()
        cache.create_matview("t2", "t", ["id", "v"], region="r1")
        cache.run_for(12.0)
        sql = (
            "SELECT a.id, b.v FROM t a, t b WHERE a.id = b.id "
            "CURRENCY BOUND 60 SEC ON (a, b)"
        )
        result = cache.execute(sql)
        report = ResultChecker(cache).check(sql, result)
        assert report.ok, report.violations
