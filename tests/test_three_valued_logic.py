"""Property tests for SQL's three-valued logic in the expression engine.

The evaluator returns True / False / None (unknown).  These tests pin the
Kleene-logic laws the WHERE clause depends on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.expressions import OutputCol, RowBinding, evaluator
from repro.sql import ast
from repro.sql.parser import parse_expression

TRUTH = st.sampled_from([True, False, None])


def evaluate(expr, a=None, b=None, c=None):
    binding = RowBinding([OutputCol("a", "t"), OutputCol("b", "t"), OutputCol("c", "t")])
    return evaluator(expr, binding)((a, b, c))


def var(name):
    # Booleans stored directly in columns; comparisons build 3VL atoms.
    return parse_expression(f"t.{name} = TRUE")


def tv(value):
    """Column encoding: True/False stay booleans, None is NULL."""
    return value


class TestKleeneLaws:
    @settings(max_examples=60)
    @given(a=TRUTH, b=TRUTH)
    def test_de_morgan_and(self, a, b):
        lhs = parse_expression("NOT (t.a = TRUE AND t.b = TRUE)")
        rhs = parse_expression("(NOT t.a = TRUE) OR (NOT t.b = TRUE)")
        assert evaluate(lhs, tv(a), tv(b)) == evaluate(rhs, tv(a), tv(b))

    @settings(max_examples=60)
    @given(a=TRUTH, b=TRUTH)
    def test_de_morgan_or(self, a, b):
        lhs = parse_expression("NOT (t.a = TRUE OR t.b = TRUE)")
        rhs = parse_expression("(NOT t.a = TRUE) AND (NOT t.b = TRUE)")
        assert evaluate(lhs, tv(a), tv(b)) == evaluate(rhs, tv(a), tv(b))

    @settings(max_examples=60)
    @given(a=TRUTH, b=TRUTH)
    def test_commutativity(self, a, b):
        for op in ("AND", "OR"):
            e1 = parse_expression(f"t.a = TRUE {op} t.b = TRUE")
            e2 = parse_expression(f"t.b = TRUE {op} t.a = TRUE")
            assert evaluate(e1, tv(a), tv(b)) == evaluate(e2, tv(a), tv(b))

    @settings(max_examples=60)
    @given(a=TRUTH, b=TRUTH, c=TRUTH)
    def test_associativity(self, a, b, c):
        for op in ("AND", "OR"):
            e1 = parse_expression(f"(t.a = TRUE {op} t.b = TRUE) {op} t.c = TRUE")
            e2 = parse_expression(f"t.a = TRUE {op} (t.b = TRUE {op} t.c = TRUE)")
            assert evaluate(e1, tv(a), tv(b), tv(c)) == evaluate(e2, tv(a), tv(b), tv(c))

    @settings(max_examples=60)
    @given(a=TRUTH)
    def test_double_negation(self, a):
        expr = parse_expression("NOT (NOT t.a = TRUE)")
        base = parse_expression("t.a = TRUE")
        assert evaluate(expr, tv(a)) == evaluate(base, tv(a))

    @settings(max_examples=60)
    @given(a=TRUTH)
    def test_absorbing_elements(self, a):
        # FALSE absorbs AND even with unknown; TRUE absorbs OR.
        e_and = parse_expression("t.a = TRUE AND 1 = 2")
        e_or = parse_expression("t.a = TRUE OR 1 = 1")
        assert evaluate(e_and, tv(a)) is False
        assert evaluate(e_or, tv(a)) is True

    @settings(max_examples=60)
    @given(a=TRUTH)
    def test_null_comparison_is_unknown_not_false(self, a):
        # a = NULL is unknown regardless of a.
        expr = parse_expression("t.a = NULL")
        assert evaluate(expr, tv(a)) is None


class TestWhereSemantics:
    """Only TRUE passes a WHERE filter; UNKNOWN and FALSE are dropped."""

    def test_unknown_rows_filtered(self):
        from repro.cache.backend import BackendServer

        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1, 5), (2, NULL), (3, 20)")
        backend.refresh_statistics()
        assert backend.execute("SELECT x.id FROM t x WHERE x.v > 1").rows == [(1,), (3,)]
        # NOT (v > 1) also excludes the NULL row: unknown is not false.
        assert backend.execute("SELECT x.id FROM t x WHERE NOT x.v > 1").rows == []

    def test_is_null_catches_what_comparisons_miss(self):
        from repro.cache.backend import BackendServer

        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id))"
        )
        backend.execute("INSERT INTO t VALUES (1, 5), (2, NULL)")
        backend.refresh_statistics()
        assert backend.execute("SELECT x.id FROM t x WHERE x.v IS NULL").rows == [(2,)]
