"""A guided walkthrough of the paper's §1–§2 narrative, as executable
assertions.  Each test corresponds to a passage of the paper text."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.semantics.checker import ResultChecker
from repro.workloads.bookstore import load_bookstore


class TestIntroductionScenario:
    """§1: 'Suppose an application queries a replicated table where the
    replication engine is configured to propagate updates every 30
    seconds...  Suppose that replication is later reconfigured to
    propagate updates every 5 minutes.  Is 5 minutes still within the
    application's currency requirements?'"""

    def build(self, interval):
        backend = BackendServer()
        backend.create_table(
            "CREATE TABLE quotes (sym INT NOT NULL, px FLOAT NOT NULL, PRIMARY KEY (sym))"
        )
        backend.execute("INSERT INTO quotes VALUES (1, 10.0)")
        backend.refresh_statistics()
        cache = MTCache(backend)
        cache.create_region("repl", interval, 2.0, heartbeat_interval=1.0)
        cache.create_matview("quotes_copy", "quotes", ["sym", "px"], region="repl")
        cache.run_for(interval + 1)
        return cache

    # The application is willing to accept data up to 45 seconds old.
    QUERY = "SELECT q.px FROM quotes q CURRENCY BOUND 45 SEC ON (q)"

    def test_thirty_second_replication_meets_requirements(self):
        cache = self.build(interval=30.0)
        # Sample across a whole propagation cycle: always local.
        for _ in range(6):
            cache.run_for(5.0)
            result = cache.execute(self.QUERY)
            assert result.context.branches[0][1] == 0

    def test_five_minute_replication_detected_and_handled(self):
        cache = self.build(interval=300.0)
        cache.run_for(100.0)  # mid-cycle: data ~100s stale
        result = cache.execute(self.QUERY)
        # The system *knows* the requirement is no longer met — unlike the
        # status quo the paper criticizes — and routes to the back-end.
        assert result.context.branches[0][1] == 1

    def test_violation_can_be_surfaced_instead(self):
        cache = self.build(interval=300.0)
        cache.fallback_policy = "serve_stale"
        cache.run_for(100.0)
        result = cache.execute(self.QUERY)
        assert result.warnings  # 'returning the data but with an error code'


class TestSectionTwoBookstore:
    """§2's running example: Books ⋈ Reviews under E1/E2 semantics."""

    @pytest.fixture()
    def shop(self):
        backend = BackendServer()
        load_bookstore(backend, n_books=30)
        cache = MTCache(backend)
        cache.create_region("books_r", 3600.0, 1.0, heartbeat_interval=1.0)
        cache.create_region("reviews_r", 3600.0, 1.0, heartbeat_interval=1.0)
        cache.create_matview("books_copy", "books", ["isbn", "title", "price"],
                             region="books_r")
        cache.create_matview("reviews_copy", "reviews",
                             ["review_id", "isbn", "rating"], region="reviews_r")
        return backend, cache

    JOIN = (
        "SELECT b.isbn, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn"
    )

    def test_e1_requires_one_snapshot_of_both(self, shop):
        backend, cache = shop
        # BooksCopy and ReviewsCopy are refreshed hourly — but by different
        # agents, so 'the states of the two replicas do not necessarily
        # correspond to the same snapshot' and E1 cannot use them.
        plan = cache.optimize(self.JOIN + " CURRENCY BOUND 10 MIN ON (b, r)")
        assert plan.summary() == "remote"

    def test_e2_releases_the_consistency_requirement(self, shop):
        backend, cache = shop
        cache.run_for(3601)
        # With hourly refresh, a 10-minute bound passes its guard only
        # ~17% of the time, so the cost model (correctly!) prefers pure
        # remote.  Bounds beyond one refresh cycle make the replicas
        # reliable, and E2's relaxed consistency lets both serve locally.
        sql = self.JOIN + " CURRENCY BOUND 2 HOUR ON (b), 2 HOUR ON (r)"
        result = cache.execute(sql)
        assert result.context.remote_queries == []
        report = ResultChecker(cache).check(sql, result)
        assert report.ok, report.violations

    def test_e2_bounds_within_refresh_cycle_rationally_go_remote(self, shop):
        backend, cache = shop
        cache.run_for(3601)
        # The §3.2.4 expected-cost formula at work: p ~ 0.17 for a 10-min
        # bound under hourly refresh, so the guarded plan's fallback cost
        # dominates and the optimizer ships the join instead.
        plan = cache.optimize(self.JOIN + " CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)")
        assert plan.summary() == "remote"

    def test_hourly_refresh_fails_ten_minute_bound_mid_cycle(self, shop):
        backend, cache = shop
        cache.run_for(3601)  # first refresh done
        cache.run_for(1800)  # 30 minutes into the next cycle
        result = cache.execute(
            self.JOIN + " CURRENCY BOUND 10 MIN ON (b), 10 MIN ON (r)"
        )
        # Both replicas ~30 min stale: guards send both sides remote.
        assert all(index == 1 for _, index in result.context.branches) or (
            len(result.context.remote_queries) > 0
        )

    def test_results_always_good_enough(self, shop):
        """§1's thesis sentence: 'applications always get data that is
        good enough for their purpose' — checked formally."""
        backend, cache = shop
        checker = ResultChecker(cache)
        cache.run_for(3601)
        for bound_b, bound_r in ((600, 1800), (1, 1), (7200, 7200)):
            sql = (
                self.JOIN
                + f" CURRENCY BOUND {bound_b} SEC ON (b), {bound_r} SEC ON (r)"
            )
            backend.execute("UPDATE books SET price = price + 1 WHERE isbn = 5")
            result = cache.execute(sql)
            report = checker.check(sql, result)
            assert report.ok, (sql, report.violations)
            cache.run_for(137)
