"""Tests for per-group consistency (§8.6) and row-level refresh.

A view maintained by row-level refresh is per-row consistent but not, in
general, snapshot consistent — exactly the regime where the currency
clause's BY grouping columns matter.
"""

import pytest

from repro.cache.backend import BackendServer
from repro.catalog.catalog import Catalog
from repro.replication.row_refresh import RowRefreshAgent
from repro.semantics.groups import (
    GroupConsistencyChecker,
    group_delta,
    intervals_intersect,
    validity_interval,
)
from repro.semantics.model import HistoryView


def make_env():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE reviews (review_id INT NOT NULL, isbn INT NOT NULL, "
        "rating INT NOT NULL, PRIMARY KEY (review_id))"
    )
    # Two isbn groups, two reviews each.
    backend.execute(
        "INSERT INTO reviews VALUES (1, 100, 5), (2, 100, 4), (3, 200, 3), (4, 200, 2)"
    )
    backend.refresh_statistics()

    catalog = Catalog()
    catalog.create_table("reviews", backend.catalog.table("reviews").schema,
                         primary_key=["review_id"], shadow=True)
    catalog.create_region("rr", 10.0, 0.0)
    view = catalog.create_matview(
        "reviews_copy", "reviews", ["review_id", "isbn", "rating"], region="rr"
    )
    agent = RowRefreshAgent(view, backend.catalog, backend.txn_manager, backend.clock)
    agent.refresh_all()
    return backend, view, agent


class TestValidityIntervals:
    def test_unmodified_copy_valid_forever(self):
        backend, _, _ = make_env()
        history = HistoryView(backend.txn_manager.log)
        lo, hi = validity_interval(history, "reviews", (1,), sync_txn=1)
        assert lo == 1
        assert hi is None

    def test_modified_copy_interval_closes(self):
        backend, _, _ = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")  # txn 2
        history = HistoryView(backend.txn_manager.log)
        lo, hi = validity_interval(history, "reviews", (1,), sync_txn=1)
        assert (lo, hi) == (1, 1)
        lo, hi = validity_interval(history, "reviews", (1,), sync_txn=2)
        assert (lo, hi) == (2, None)

    def test_intersection(self):
        assert intervals_intersect([(1, 3), (2, None)], last_txn=5)
        assert not intervals_intersect([(1, 1), (3, None)], last_txn=5)


class TestGroupDelta:
    def test_same_sync_zero(self):
        backend, _, _ = make_env()
        history = HistoryView(backend.txn_manager.log)
        assert group_delta(history, "reviews", [((1,), 1), ((2,), 1)]) == 0

    def test_unmodified_rows_zero_even_with_different_syncs(self):
        backend, _, _ = make_env()
        history = HistoryView(backend.txn_manager.log)
        # Neither row modified after txn 1: both copies current at txn 1.
        assert group_delta(history, "reviews", [((1,), 1), ((2,), 1)]) == 0

    def test_refresh_of_unmodified_row_keeps_delta_zero(self):
        backend, _, _ = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")  # txn 2
        history = HistoryView(backend.txn_manager.log)
        # Row 1's copy predates its update; row 2 re-synced later but its
        # master never changed — both copies match snapshot H_1: delta 0.
        assert group_delta(history, "reviews", [((1,), 1), ((2,), 2)]) == 0

    def test_divergent_group_positive(self):
        backend, _, _ = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")  # txn 2
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 2")  # txn 3
        history = HistoryView(backend.txn_manager.log)
        # Row 1 synced before its update (valid only in H_1); row 2 synced
        # after its own update (valid from H_3): no common snapshot.
        assert group_delta(history, "reviews", [((1,), 1), ((2,), 3)]) > 0

    def test_singleton_group_always_zero(self):
        backend, _, _ = make_env()
        history = HistoryView(backend.txn_manager.log)
        assert group_delta(history, "reviews", [((1,), 1)]) == 0


class TestRowRefreshAgent:
    def test_refresh_all_populates(self):
        _, view, agent = make_env()
        assert view.table.row_count == 4
        assert len(agent.sync) == 4

    def test_refresh_row_updates_value(self):
        backend, view, agent = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")
        agent.refresh_row((1,))
        rid = view.table.pk_lookup((1,))
        assert view.table.row(rid)[2] == 1

    def test_refresh_row_deletes_gone_row(self):
        backend, view, agent = make_env()
        backend.execute("DELETE FROM reviews WHERE review_id = 4")
        agent.refresh_row((4,))
        assert view.table.pk_lookup((4,)) is None
        assert (4,) not in agent.sync

    def test_refresh_row_inserts_new_row(self):
        backend, view, agent = make_env()
        backend.execute("INSERT INTO reviews VALUES (5, 100, 4)")
        agent.refresh_row((5,))
        assert view.table.pk_lookup((5,)) is not None

    def test_refresh_round_cycles(self):
        backend, view, agent = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 2")
        agent.refresh_round(4)  # touches every row once
        rid = view.table.pk_lookup((2,))
        assert view.table.row(rid)[2] == 1

    def test_predicate_respected(self):
        backend, _, _ = make_env()
        from repro.sql.parser import parse_expression

        catalog = Catalog()
        catalog.create_region("rr2", 10.0, 0.0)
        catalog.create_table("reviews", backend.catalog.table("reviews").schema,
                             primary_key=["review_id"], shadow=True)
        view = catalog.create_matview(
            "good_reviews", "reviews", ["review_id", "isbn", "rating"],
            predicate=parse_expression("rating >= 4"), region="rr2",
        )
        agent = RowRefreshAgent(view, backend.catalog, backend.txn_manager, backend.clock)
        agent.refresh_all()
        assert view.table.row_count == 2
        # A row dropping below the predicate leaves the view on refresh.
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")
        agent.refresh_row((1,))
        assert view.table.pk_lookup((1,)) is None


class TestGroupConsistencyChecker:
    def test_fresh_view_consistent_at_all_granularities(self):
        backend, view, agent = make_env()
        checker = GroupConsistencyChecker(backend)
        assert checker.check(view, agent.sync_of).consistent  # table level
        assert checker.check(view, agent.sync_of, by_columns=["isbn"]).consistent
        assert checker.check(view, agent.sync_of, by_columns=["review_id"]).consistent

    def test_partial_refresh_breaks_table_level_only(self):
        backend, view, agent = make_env()
        # Group 200's master changes first (invalidating its copies), then
        # group 100's; refreshing only group 100 leaves the view with
        # copies valid strictly before and strictly after txn 2 — no
        # common snapshot, though each isbn group has one.
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 3")  # txn 2
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")  # txn 3
        agent.refresh_group([view.table.schema.index_of("isbn")], (100,))
        checker = GroupConsistencyChecker(backend)

        table_level = checker.check(view, agent.sync_of)
        by_isbn = checker.check(view, agent.sync_of, by_columns=["isbn"])
        by_pk = checker.check(view, agent.sync_of, by_columns=["review_id"])

        assert not table_level.consistent  # group 200 is stale, 100 fresh
        assert by_isbn.consistent  # each isbn group on one snapshot
        assert by_pk.consistent  # rows always self-consistent

    def test_intra_group_divergence_detected(self):
        backend, view, agent = make_env()
        # Both rows of isbn group 100 change on the master; only row 2 is
        # re-synced.  Row 1's copy is valid only before txn 2, row 2's only
        # from txn 3 on: the group spans snapshots.
        backend.execute("UPDATE reviews SET rating = 9 WHERE review_id = 1")  # txn 2
        backend.execute("UPDATE reviews SET rating = 8 WHERE review_id = 2")  # txn 3
        agent.refresh_row((2,))
        checker = GroupConsistencyChecker(backend)
        by_isbn = checker.check(view, agent.sync_of, by_columns=["isbn"])
        assert not by_isbn.consistent
        assert (100,) in by_isbn.inconsistent_groups()
        # Per-row granularity is still fine.
        assert checker.check(view, agent.sync_of, by_columns=["review_id"]).consistent

    def test_refresh_group_restores_consistency(self):
        backend, view, agent = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 2")
        agent.refresh_row((1,))
        backend.execute("UPDATE reviews SET rating = 2 WHERE review_id = 1")
        agent.refresh_row((2,))
        agent.refresh_group([view.table.schema.index_of("isbn")], (100,))
        checker = GroupConsistencyChecker(backend)
        assert checker.check(view, agent.sync_of, by_columns=["isbn"]).consistent

    def test_finest_satisfied(self):
        backend, view, agent = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 3")  # txn 2
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")  # txn 3
        agent.refresh_group([view.table.schema.index_of("isbn")], (100,))
        checker = GroupConsistencyChecker(backend)
        satisfied = checker.finest_satisfied(
            view, agent.sync_of, [None, ["isbn"], ["review_id"]]
        )
        assert () not in satisfied  # table level broken
        assert ("isbn",) in satisfied
        assert ("review_id",) in satisfied

    def test_refresh_all_restores_everything(self):
        backend, view, agent = make_env()
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 1")
        agent.refresh_row((1,))
        backend.execute("UPDATE reviews SET rating = 1 WHERE review_id = 4")
        agent.refresh_all()
        checker = GroupConsistencyChecker(backend)
        assert checker.check(view, agent.sync_of).consistent
