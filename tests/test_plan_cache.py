"""Tests for MTCache's compiled-plan cache (paper §3.2: re-optimization is
needed only when consistency-relevant state changes — dynamic plans stay
correct across replication progress thanks to the run-time guards)."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


SQL = "SELECT x.id, x.v FROM t x CURRENCY BOUND 5 SEC ON (x)"


class TestReuse:
    def test_same_sql_reuses_plan(self, cache):
        first = cache.optimize(SQL)
        second = cache.optimize(SQL)
        assert second is first
        assert cache.plan_cache_stats["hits"] == 1

    def test_different_sql_different_plans(self, cache):
        a = cache.optimize(SQL)
        b = cache.optimize(SQL.replace("5 SEC", "6 SEC"))
        assert a is not b

    def test_ast_input_bypasses_cache(self, cache):
        from repro.sql.parser import parse

        a = cache.optimize(parse(SQL))
        b = cache.optimize(parse(SQL))
        assert a is not b

    def test_use_cache_false_bypasses(self, cache):
        a = cache.optimize(SQL)
        b = cache.optimize(SQL, use_cache=False)
        assert a is not b

    def test_reused_plan_still_guarded_correctly(self, cache):
        # The cached dynamic plan must flip branches as staleness changes —
        # that is the whole point of run-time currency checking.
        fresh = cache.execute(SQL)
        assert fresh.context.branches[0][1] == 0
        cache.run_for(6.0)  # mid-cycle: bound 5s now violated
        stale = cache.execute(SQL)
        assert stale.plan is fresh.plan  # same compiled plan
        assert stale.context.branches[0][1] == 1

    def test_capacity_evicts(self, cache):
        cache._plan_cache_size = 2
        for i in range(4):
            cache.optimize(f"SELECT x.id FROM t x WHERE x.id > {i} CURRENCY BOUND 60 SEC ON (x)")
        assert len(cache._plan_cache) == 2


class TestInvalidation:
    def test_new_view_invalidates(self, cache):
        first = cache.optimize(SQL)
        cache.create_matview("t2", "t", ["id", "v"], region="r1")
        second = cache.optimize(SQL)
        assert second is not first
        assert cache.plan_cache_stats["invalidations"] >= 1

    def test_new_region_invalidates(self, cache):
        first = cache.optimize(SQL)
        cache.create_region("r2", 5, 1)
        assert cache.optimize(SQL) is not first

    def test_view_index_invalidates(self, cache):
        first = cache.optimize(SQL)
        cache.create_view_index("t_copy", "by_v", ["v"])
        assert cache.optimize(SQL) is not first

    def test_stats_refresh_invalidates(self, cache):
        first = cache.optimize(SQL)
        cache.refresh_shadow_stats()
        assert cache.optimize(SQL) is not first

    def test_policy_change_invalidates(self, cache):
        first = cache.optimize(SQL)
        cache.fallback_policy = "serve_stale"
        assert cache.optimize(SQL) is not first

    def test_policy_change_takes_effect_on_new_plan(self, cache):
        cache.execute(SQL)
        cache.fallback_policy = "serve_stale"
        cache.run_for(6.0)  # stale
        result = cache.execute(SQL)
        assert result.context.branches[0][1] == 0  # served stale locally
        assert result.warnings

    def test_bad_policy_rejected_by_setter(self, cache):
        with pytest.raises(ValueError):
            cache.fallback_policy = "nope"

    def test_dml_does_not_invalidate(self, cache):
        first = cache.optimize(SQL)
        cache.execute("INSERT INTO t VALUES (3, 30)")
        assert cache.optimize(SQL) is first
