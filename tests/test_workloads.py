"""Tests for the workload generators and the paper experiment setup."""

import pytest

from repro.cache.backend import BackendServer
from repro.workloads.bookstore import load_bookstore
from repro.workloads.experiment import REGION_SETTINGS, build_paper_setup
from repro.workloads.queries import guard_query, plan_choice_query
from repro.workloads.tpcd import (
    apply_paper_scale_stats,
    customer_count,
    generate_customers,
    generate_orders,
    load_tpcd,
)


class TestGenerators:
    def test_customer_count_scales(self):
        assert customer_count(1.0) == 150_000
        assert customer_count(0.01) == 1500
        assert customer_count(0.0) == 1  # never zero

    def test_customers_deterministic(self):
        a = list(generate_customers(0.001, seed=5))
        b = list(generate_customers(0.001, seed=5))
        assert a == b

    def test_customers_differ_by_seed(self):
        a = list(generate_customers(0.001, seed=5))
        b = list(generate_customers(0.001, seed=6))
        assert a != b

    def test_orders_reference_valid_customers(self):
        n = customer_count(0.001)
        orders = list(generate_orders(0.001))
        assert all(1 <= o[0] <= n for o in orders)

    def test_orders_about_ten_per_customer(self):
        n = customer_count(0.01)
        orders = list(generate_orders(0.01))
        assert 7 * n <= len(orders) <= 13 * n

    def test_order_keys_unique(self):
        orders = list(generate_orders(0.005))
        keys = [(o[0], o[1]) for o in orders]
        assert len(keys) == len(set(keys))


class TestLoaders:
    def test_load_tpcd_populates_and_logs(self):
        backend = BackendServer()
        load_tpcd(backend, scale_factor=0.001)
        customers = backend.catalog.table("customer").table.row_count
        orders = backend.catalog.table("orders").table.row_count
        assert customers == 150
        assert orders > 0
        # Everything flowed through the replication log.
        assert len(backend.txn_manager.log) == customers + orders

    def test_load_tpcd_stats_refreshed(self):
        backend = BackendServer()
        load_tpcd(backend, scale_factor=0.001)
        stats = backend.catalog.table("customer").stats
        assert stats.row_count == 150
        assert stats.column("c_custkey").ndv == 150

    def test_secondary_index_on_acctbal(self):
        backend = BackendServer()
        load_tpcd(backend, scale_factor=0.001)
        assert backend.catalog.table("customer").table.index_on(["c_acctbal"]) is not None

    def test_load_bookstore(self):
        backend = BackendServer()
        load_bookstore(backend, n_books=50)
        assert backend.catalog.table("books").table.row_count == 50
        assert backend.catalog.table("reviews").table.row_count > 0
        assert backend.catalog.table("sales").table.row_count > 0


class TestPaperScaleStats:
    def test_overlay_row_counts(self):
        backend = BackendServer()
        load_tpcd(backend, scale_factor=0.001)
        apply_paper_scale_stats(backend)
        assert backend.catalog.table("customer").stats.row_count == 150_000
        assert backend.catalog.table("orders").stats.row_count == 1_500_000

    def test_overlay_does_not_touch_data(self):
        backend = BackendServer()
        load_tpcd(backend, scale_factor=0.001)
        apply_paper_scale_stats(backend)
        assert backend.catalog.table("customer").table.row_count == 150


class TestExperimentSetup:
    @pytest.fixture(scope="class")
    def setup(self):
        return build_paper_setup(scale_factor=0.002)

    def test_region_table_matches_table_4_1(self, setup):
        rows = setup.region_table()
        assert rows == [
            ("cr1", 15.0, 5.0, "cust_prj"),
            ("cr2", 10.0, 5.0, "orders_prj"),
        ]

    def test_views_exist_and_are_populated(self, setup):
        cust = setup.cache.catalog.matview("cust_prj")
        orders = setup.cache.catalog.matview("orders_prj")
        assert cust.table.row_count == 300
        assert orders.table.row_count > 0

    def test_views_in_different_regions(self, setup):
        assert setup.cache.catalog.matview("cust_prj").region == "cr1"
        assert setup.cache.catalog.matview("orders_prj").region == "cr2"

    def test_cust_prj_has_no_secondary_index(self, setup):
        table = setup.cache.catalog.matview("cust_prj").table
        assert table.index_on(["c_acctbal"]) is None

    def test_settled_guards_pass(self, setup):
        for agent in setup.cache.agents.values():
            bound = agent.staleness_bound()
            assert bound is not None
            assert bound < 30.0


class TestQueryBuilders:
    def test_all_plan_choice_queries_parse(self):
        from repro.sql.parser import parse

        for name in ("q1", "q2", "q3", "q4", "q5", "q6", "q7"):
            parse(plan_choice_query(name))

    def test_all_guard_queries_parse(self):
        from repro.sql.parser import parse

        for name in ("gq1", "gq2", "gq3"):
            parse(guard_query(name))

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            plan_choice_query("q99")
        with pytest.raises(ValueError):
            guard_query("zzz")

    def test_scale_factor_adjusts_keys(self):
        small = plan_choice_query("q1", 0.01)
        large = plan_choice_query("q1", 1.0)
        assert small != large
