"""Tests for multi-cache deployments and back-end failure behavior."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.common.errors import ReproError
from repro.fleet import CacheFleet


def make_backend():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE inv (id INT NOT NULL, qty INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30)")
    backend.refresh_statistics()
    return backend


class TestTwoCaches:
    """Two mid-tier caches sharing one back-end (the paper's deployment
    picture), each with its own regions, agents, and heartbeat tables."""

    def make(self):
        backend = make_backend()
        fast = MTCache(backend)
        fast.create_region("fast_r", 4.0, 1.0, heartbeat_interval=0.5)
        fast.create_matview("inv_fast", "inv", ["id", "qty"], region="fast_r")
        slow = MTCache(backend)
        slow.create_region("slow_r", 30.0, 5.0, heartbeat_interval=1.0)
        slow.create_matview("inv_slow", "inv", ["id", "qty"], region="slow_r")
        backend.run_for(31.0)
        return backend, fast, slow

    def test_both_caches_serve_locally(self):
        _, fast, slow = self.make()
        sql = "SELECT i.id FROM inv i CURRENCY BOUND 600 SEC ON (i)"
        assert fast.execute(sql).context.branches[0][1] == 0
        assert slow.execute(sql).context.branches[0][1] == 0

    def test_different_lag_tolerances(self):
        backend, fast, slow = self.make()
        backend.run_for(10.0)  # fast cache refreshed, slow mid-cycle
        sql = "SELECT i.id FROM inv i CURRENCY BOUND 8 SEC ON (i)"
        fast_result = fast.execute(sql)
        slow_result = slow.execute(sql)
        assert fast_result.context.branches[0][1] == 0
        assert slow_result.context.branches[0][1] == 1  # too stale locally

    def test_write_through_one_cache_reaches_the_other(self):
        backend, fast, slow = self.make()
        fast.execute("INSERT INTO inv VALUES (4, 40)")
        backend.run_for(40.0)  # both agents propagate
        sql = "SELECT i.id FROM inv i CURRENCY BOUND 600 SEC ON (i)"
        assert len(fast.execute(sql).rows) == 4
        assert len(slow.execute(sql).rows) == 4

    def test_caches_have_independent_sessions(self):
        _, fast, slow = self.make()
        fast.execute("BEGIN TIMEORDERED")
        assert fast.session.active
        assert not slow.session.active
        fast.execute("END TIMEORDERED")

    def test_region_namespaces_must_differ(self):
        backend = make_backend()
        a = MTCache(backend)
        a.create_region("shared", 5.0, 1.0)
        b = MTCache(backend)
        # The same cid on a second cache collides in the back-end
        # heartbeat table (one row per region id).
        with pytest.raises(ReproError):
            b.create_region("shared", 5.0, 1.0)


class TestAgentStall:
    """Two caches sharing a back-end under an injected distribution-agent
    stall: a write-through lands on one node's copy on schedule while the
    stalled node's guard routes remote until its region catches up."""

    def make(self):
        backend = make_backend()
        fleet = CacheFleet(backend, n_nodes=2)
        fleet.create_region("r", 2.0, 0.5, heartbeat_interval=0.5)
        fleet.create_matview("inv_copy", "inv", ["id", "qty"], region="r")
        fleet.run_for(4.0)  # let both nodes' regions settle
        return backend, fleet

    def test_stalled_node_routes_remote_until_caught_up(self):
        backend, fleet = self.make()
        healthy, stalled = fleet.node("node0"), fleet.node("node1")
        fleet.network.stall_agents(10.0, node="node1")
        healthy.execute("INSERT INTO inv VALUES (4, 40)")  # write-through
        fleet.run_for(5.0)  # healthy agent propagates; stalled one skips
        sql = "SELECT i.id FROM inv i CURRENCY BOUND 4 SEC ON (i)"

        fresh = healthy.execute(sql)
        assert fresh.context.branches[0][1] == 0  # guard passed: local
        assert len(fresh.rows) == 4  # the new row already replicated

        lagging = stalled.execute(sql)
        assert lagging.context.branches[0][1] == 1  # too stale: remote
        assert len(lagging.rows) == 4  # the back-end answers current
        assert stalled.max_staleness() > 4.0

        # Skipped wakes were counted against the stalled node only.
        snap = fleet.metrics.snapshot()
        assert snap['fleet_agent_stall_skips_total{node="node1"}'] >= 1
        assert 'fleet_agent_stall_skips_total{node="node0"}' not in snap

        # Stall window ends; the agent catches up and the guard passes.
        fleet.run_for(10.0)
        caught_up = stalled.execute(sql)
        assert caught_up.context.branches[0][1] == 0
        assert len(caught_up.rows) == 4

    def test_stalled_node_with_loose_bound_stays_local_and_stale(self):
        backend, fleet = self.make()
        healthy, stalled = fleet.node("node0"), fleet.node("node1")
        fleet.network.stall_agents(10.0, node="node1")
        healthy.execute("INSERT INTO inv VALUES (4, 40)")
        fleet.run_for(5.0)
        sql = "SELECT i.id FROM inv i CURRENCY BOUND 600 SEC ON (i)"
        result = stalled.execute(sql)
        assert result.context.branches[0][1] == 0  # bound tolerates the lag
        assert len(result.rows) == 3  # the write has not replicated here


class TestBackendFailure:
    def make(self):
        backend = make_backend()
        cache = MTCache(backend)
        cache.create_region("r", 10.0, 2.0, heartbeat_interval=1.0)
        cache.create_matview("inv_copy", "inv", ["id", "qty"], region="r")
        cache.run_for(11.0)
        return backend, cache

    def test_remote_error_propagates(self):
        _, cache = self.make()

        def broken(sql):
            raise ConnectionError("back-end unreachable")

        cache.remote_executor_backup = cache.remote_executor
        cache.remote_executor = broken
        # Plans are built against the method reference at build time, so
        # re-optimize after the swap.
        with pytest.raises(ConnectionError):
            cache.execute("SELECT i.id FROM inv i CURRENCY BOUND 0 SEC ON (i)")

    def test_local_queries_survive_backend_outage(self):
        _, cache = self.make()

        def broken(sql):
            raise ConnectionError("back-end unreachable")

        cache.remote_executor = broken
        result = cache.execute("SELECT i.id FROM inv i CURRENCY BOUND 600 SEC ON (i)")
        assert len(result.rows) == 3  # guard passed: remote never touched

    def test_untaken_remote_branch_never_contacts_backend(self):
        _, cache = self.make()
        calls = []
        original = cache.remote_executor

        def counting(sql):
            calls.append(sql)
            return original(sql)

        cache.remote_executor = counting
        cache.execute("SELECT i.id FROM inv i CURRENCY BOUND 600 SEC ON (i)")
        assert calls == []
