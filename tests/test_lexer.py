"""Tests for the SQL lexer."""

import pytest

from repro.common.errors import ParseError
from repro.sql.lexer import Lexer, TokenType


def tokens_of(sql):
    return [t for t in Lexer(sql).tokens() if t.type is not TokenType.EOF]


class TestBasics:
    def test_keywords_case_insensitive(self):
        for text in ("SELECT", "select", "SeLeCt"):
            (token,) = tokens_of(text)
            assert token.type is TokenType.KEYWORD
            assert token.value == "select"

    def test_identifiers_lowercased(self):
        (token,) = tokens_of("MyTable")
        assert token.type is TokenType.IDENT
        assert token.value == "mytable"

    def test_identifier_with_underscore_and_digits(self):
        (token,) = tokens_of("c_custkey2")
        assert token.value == "c_custkey2"

    def test_integer(self):
        (token,) = tokens_of("42")
        assert token.type is TokenType.NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float(self):
        (token,) = tokens_of("3.75")
        assert token.value == 3.75
        assert isinstance(token.value, float)

    def test_leading_dot_float(self):
        (token,) = tokens_of(".5")
        assert token.value == 0.5

    def test_string_literal(self):
        (token,) = tokens_of("'hello'")
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_string_with_escaped_quote(self):
        (token,) = tokens_of("'it''s'")
        assert token.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokens_of("'oops")

    def test_operators(self):
        values = [t.value for t in tokens_of("<= >= <> != = < > + - * / %")]
        assert values == ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%"]

    def test_punct(self):
        values = [t.value for t in tokens_of("( ) , .")]
        assert values == ["(", ")", ",", "."]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokens_of("@")

    def test_eof_token_terminates(self):
        tokens = Lexer("select").tokens()
        assert tokens[-1].type is TokenType.EOF


class TestComments:
    def test_line_comment(self):
        assert [t.value for t in tokens_of("select -- comment\n 1")] == ["select", 1]

    def test_line_comment_at_eof(self):
        assert [t.value for t in tokens_of("select -- trailing")] == ["select"]

    def test_block_comment(self):
        assert [t.value for t in tokens_of("select /* x */ 1")] == ["select", 1]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokens_of("select /* oops")


class TestCurrencyTokens:
    def test_currency_clause_tokens(self):
        values = [t.value for t in tokens_of("CURRENCY BOUND 10 MIN ON (B, R)")]
        assert values == ["currency", "bound", 10, "min", "on", "(", "b", ",", "r", ")"]

    def test_timeordered(self):
        values = [t.value for t in tokens_of("BEGIN TIMEORDERED")]
        assert values == ["begin", "timeordered"]

    def test_units_are_keywords(self):
        for unit in ("ms", "sec", "seconds", "min", "minutes", "hour", "day"):
            (token,) = tokens_of(unit)
            assert token.type is TokenType.KEYWORD
