"""Tests for the C&C-aware query-result cache (§1, third scenario)."""

import pytest

from repro.cache.backend import BackendServer
from repro.resultcache.cache import ResultCache


@pytest.fixture()
def env():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    backend.refresh_statistics()
    return backend, ResultCache(backend)


Q = "SELECT x.id, x.v FROM t x CURRENCY BOUND {b} SEC ON (x)"


class TestBasicCaching:
    def test_miss_then_hit(self, env):
        _, cache = env
        first = cache.execute(Q.format(b=60))
        second = cache.execute(Q.format(b=60))
        assert cache.stats == {"hits": 1, "misses": 1, "recomputes": 0, "invalidations": 0}
        assert first.rows == second.rows

    def test_key_ignores_currency_clause(self, env):
        _, cache = env
        cache.execute(Q.format(b=60))
        cache.execute(Q.format(b=120))  # different bound, same key
        assert cache.stats["hits"] == 1
        assert len(cache) == 1

    def test_different_queries_different_entries(self, env):
        _, cache = env
        cache.execute(Q.format(b=60))
        cache.execute("SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)")
        assert len(cache) == 2

    def test_cached_result_columns(self, env):
        _, cache = env
        result = cache.execute(Q.format(b=60))
        assert result.columns == ["id", "v"]


class TestCurrencyEnforcement:
    def test_stale_entry_recomputed(self, env):
        backend, cache = env
        cache.execute(Q.format(b=5))
        backend.clock.advance(10.0)
        cache.execute(Q.format(b=5))
        assert cache.stats["recomputes"] == 1

    def test_stale_entry_still_good_for_looser_bound(self, env):
        backend, cache = env
        cache.execute(Q.format(b=5))
        backend.clock.advance(10.0)
        cache.execute(Q.format(b=60))  # within the looser bound -> hit
        assert cache.stats["hits"] == 1
        assert cache.stats["recomputes"] == 0

    def test_recompute_sees_new_data(self, env):
        backend, cache = env
        cache.execute(Q.format(b=5))
        backend.execute("INSERT INTO t VALUES (4, 40)")
        backend.clock.advance(10.0)
        result = cache.execute(Q.format(b=5))
        assert len(result.rows) == 4

    def test_within_bound_serves_stale_rows(self, env):
        backend, cache = env
        cache.execute(Q.format(b=600))
        backend.execute("INSERT INTO t VALUES (4, 40)")
        result = cache.execute(Q.format(b=600))
        assert len(result.rows) == 3  # cached, stale but within bound

    def test_zero_bound_always_recomputes(self, env):
        backend, cache = env
        cache.execute(Q.format(b=0))
        backend.clock.advance(0.1)
        cache.execute(Q.format(b=0))
        assert cache.stats["hits"] == 0

    def test_multi_class_uses_min_bound(self, env):
        backend, cache = env
        backend.create_table("CREATE TABLE u (id INT NOT NULL, PRIMARY KEY (id))")
        backend.execute("INSERT INTO u VALUES (1)")
        backend.refresh_statistics()
        sql = (
            "SELECT x.id, y.id FROM t x, u y WHERE x.id = y.id "
            "CURRENCY BOUND 5 SEC ON (x), 600 SEC ON (y)"
        )
        cache.execute(sql)
        backend.clock.advance(10.0)  # beyond 5s but within 600s
        cache.execute(sql)
        assert cache.stats["recomputes"] == 1


class TestInvalidation:
    def test_dml_through_cache_invalidates(self, env):
        _, cache = env
        cache.execute(Q.format(b=600))
        cache.execute("INSERT INTO t VALUES (4, 40)")
        assert cache.stats["invalidations"] == 1
        result = cache.execute(Q.format(b=600))
        assert len(result.rows) == 4

    def test_unrelated_table_not_invalidated(self, env):
        backend, cache = env
        backend.create_table("CREATE TABLE u (id INT NOT NULL, PRIMARY KEY (id))")
        backend.refresh_statistics()
        cache.execute(Q.format(b=600))
        cache.execute("INSERT INTO u VALUES (1)")
        assert cache.stats["invalidations"] == 0

    def test_invalidate_table_explicit(self, env):
        _, cache = env
        cache.execute(Q.format(b=600))
        assert cache.invalidate_table("t") == 1
        assert len(cache) == 0

    def test_subquery_tables_tracked(self, env):
        backend, cache = env
        backend.create_table("CREATE TABLE u (id INT NOT NULL, PRIMARY KEY (id))")
        backend.execute("INSERT INTO u VALUES (1)")
        backend.refresh_statistics()
        cache.execute(
            "SELECT x.id FROM t x WHERE EXISTS (SELECT 1 FROM u y WHERE y.id = x.id)"
        )
        assert cache.invalidate_table("u") == 1


class TestEviction:
    def test_capacity_respected(self, env):
        backend, cache = env
        cache.max_entries = 3
        for i in range(5):
            cache.execute(f"SELECT x.id FROM t x WHERE x.id > {i} CURRENCY BOUND 60 SEC ON (x)")
        assert len(cache) == 3

    def test_popular_entries_survive(self, env):
        backend, cache = env
        cache.max_entries = 2
        hot = Q.format(b=600)
        cache.execute(hot)
        cache.execute(hot)  # hit -> popularity
        cache.execute("SELECT x.id FROM t x WHERE x.id > 0 CURRENCY BOUND 600 SEC ON (x)")
        cache.execute("SELECT x.id FROM t x WHERE x.id > 1 CURRENCY BOUND 600 SEC ON (x)")
        # The hot entry must still hit.
        before = cache.stats["hits"]
        cache.execute(hot)
        assert cache.stats["hits"] == before + 1


class TestOverMTCache:
    def test_result_cache_fronting_mtcache(self, env):
        from repro.cache.mtcache import MTCache

        backend, _ = env
        mtcache = MTCache(backend)
        mtcache.create_region("r1", 10, 2, heartbeat_interval=1)
        mtcache.create_matview("t_copy", "t", ["id", "v"], region="r1")
        mtcache.run_for(11)
        rc = ResultCache(mtcache)
        first = rc.execute(Q.format(b=600))
        second = rc.execute(Q.format(b=600))
        assert first.rows == second.rows
        assert rc.stats["hits"] == 1
