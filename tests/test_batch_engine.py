"""Engine equivalence: row == batch == columnar execution, everywhere.

The three execution engines — legacy row-at-a-time (``engine="row"`` /
``batch_size=1``), row-tuple batches (``"batch"``) and columnar
:class:`~repro.engine.columnar.ColumnBatch` (``"columnar"``, the
default) — must be observationally identical: same rows, same warnings,
same routing, for every query shape the other suites exercise.  This
module drives all three engines over

* the deterministic enumeration of every query shape from
  ``test_optimizer_equivalence.py`` (scans, aggregates, 2/3-way joins,
  self joins, IN-subqueries, ORDER BY / DISTINCT / LIMIT) on the
  back-end server, and
* the paper environments from ``test_paper_walkthrough.py`` and the
  plan-choice benches (guarded SwitchUnion plans, serve-stale warnings,
  mixed routing) on MTCache,

asserting zero diffs.  The paper-environment half additionally replays
every query through a *snapshot-instantiated* plan (serialize the
optimized plan with :mod:`repro.plan`, instantiate it back, execute) and
requires identical results there too.  It also pins down the
``batch_size`` / ``engine`` knobs' contracts on both servers.
"""

from collections import Counter

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.engine.operators import ENGINES
from repro.plan import SnapshotUnsupported, instantiate_snapshot, serialize_plan
from repro.workloads.bookstore import load_bookstore
from repro.workloads.experiment import build_paper_setup
from repro.workloads.queries import guard_query, plan_choice_query

# The query-shape vocabulary of test_optimizer_equivalence.py, enumerated
# exhaustively instead of sampled.
PREDICATES_R = [
    "", "r.a < 20", "r.b = 3", "r.c > 5.0", "r.a BETWEEN 10 AND 40",
    "r.b = 3 AND r.a < 30", "r.a < 20 OR r.c > 10.0", "NOT r.b = 2",
    "r.b IN (1, 2, 3)",
]
PREDICATES_JOIN = ["", "s.y = 2", "r.a + s.x < 30", "s.y < r.b"]
ITEMS = ["r.a", "r.a, r.c", "r.b, r.a", "r.a, r.b, r.c"]


def _make_server(engine):
    batch_size = 1 if engine == "row" else 256
    backend = BackendServer(batch_size=batch_size, engine=engine)
    backend.create_table(
        "CREATE TABLE r (a INT NOT NULL, b INT NOT NULL, c FLOAT NOT NULL, "
        "PRIMARY KEY (a))"
    )
    backend.create_table(
        "CREATE TABLE s (x INT NOT NULL, y INT NOT NULL, PRIMARY KEY (x))"
    )
    backend.create_table(
        "CREATE TABLE u (p INT NOT NULL, q INT NOT NULL, PRIMARY KEY (p))"
    )
    r_rows = ", ".join(f"({i}, {i % 7}, {float(i % 13)})" for i in range(1, 61))
    s_rows = ", ".join(f"({i}, {i % 5})" for i in range(1, 41))
    u_rows = ", ".join(f"({i}, {i % 3})" for i in range(1, 31))
    backend.execute(f"INSERT INTO r VALUES {r_rows}")
    backend.execute(f"INSERT INTO s VALUES {s_rows}")
    backend.execute(f"INSERT INTO u VALUES {u_rows}")
    backend.execute("CREATE INDEX ix_r_b ON r (b)")
    backend.refresh_statistics()
    return backend


@pytest.fixture(scope="module")
def engines():
    """One backend per engine, over identical data."""
    return {engine: _make_server(engine) for engine in ENGINES}


def _assert_same_bag(engines, sql):
    reference = Counter(engines["row"].execute(sql).rows)
    for engine in ("batch", "columnar"):
        assert Counter(engines[engine].execute(sql).rows) == reference, (engine, sql)


def _assert_same_list(engines, sql):
    reference = engines["row"].execute(sql).rows
    for engine in ("batch", "columnar"):
        assert engines[engine].execute(sql).rows == reference, (engine, sql)


class TestBackendEquivalence:
    @pytest.mark.parametrize("predicate", PREDICATES_R)
    @pytest.mark.parametrize("items", ITEMS)
    def test_scan_queries(self, engines, predicate, items):
        where = f" WHERE {predicate}" if predicate else ""
        _assert_same_bag(engines, f"SELECT {items} FROM r{where}")

    @pytest.mark.parametrize("predicate", PREDICATES_R)
    def test_aggregates(self, engines, predicate):
        where = f" WHERE {predicate}" if predicate else ""
        _assert_same_bag(
            engines,
            f"SELECT r.b, COUNT(*) AS n, SUM(r.c) AS total FROM r{where} GROUP BY r.b",
        )

    @pytest.mark.parametrize("pred_r", PREDICATES_R)
    @pytest.mark.parametrize("pred_join", PREDICATES_JOIN)
    def test_two_way_joins(self, engines, pred_r, pred_join):
        conjuncts = ["r.a = s.x"]
        if pred_r:
            conjuncts.append(pred_r)
        if pred_join:
            conjuncts.append(pred_join)
        _assert_same_bag(
            engines,
            f"SELECT r.a, r.b, s.y FROM r, s WHERE {' AND '.join(conjuncts)}",
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    @pytest.mark.parametrize("join2", ["s.x = u.p", "r.b = u.q"])
    def test_three_way_joins(self, engines, pred, join2):
        conjuncts = ["r.a = s.x", join2]
        if pred:
            conjuncts.append(pred)
        _assert_same_bag(
            engines,
            f"SELECT r.a, s.y, u.q FROM r, s, u WHERE {' AND '.join(conjuncts)}",
        )

    @pytest.mark.parametrize("pred", ["", "x.b = 2", "y.b = 3", "x.a < y.a"])
    def test_self_joins(self, engines, pred):
        conjuncts = ["x.b = y.b"]
        if pred:
            conjuncts.append(pred)
        _assert_same_bag(
            engines,
            f"SELECT x.a, y.a FROM r x, r y WHERE {' AND '.join(conjuncts)}",
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    @pytest.mark.parametrize("inner", ["s.y = 2", "s.y < 3", "s.x > 20", ""])
    def test_in_subqueries(self, engines, pred, inner):
        inner_where = f" WHERE {inner}" if inner else ""
        conjuncts = [f"r.b IN (SELECT s.y FROM s{inner_where})"]
        if pred:
            conjuncts.append(pred)
        _assert_same_bag(
            engines, f"SELECT r.a, r.b FROM r WHERE {' AND '.join(conjuncts)}"
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    @pytest.mark.parametrize("direction", ["ASC", "DESC"])
    def test_order_by(self, engines, pred, direction):
        where = f" WHERE {pred}" if pred else ""
        # Unique sort key -> a total order all engines must agree on.
        _assert_same_list(
            engines, f"SELECT r.a FROM r{where} ORDER BY r.a {direction}"
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    def test_distinct(self, engines, pred):
        where = f" WHERE {pred}" if pred else ""
        _assert_same_bag(engines, f"SELECT DISTINCT r.b FROM r{where}")

    def test_limit(self, engines):
        _assert_same_list(engines, "SELECT r.a FROM r ORDER BY r.a LIMIT 7")


@pytest.fixture(scope="module")
def paper_envs():
    """One paper environment per engine, same seed, same settle."""
    return {
        engine: build_paper_setup(
            scale_factor=0.002, paper_scale_stats=True,
            batch_size=1 if engine == "row" else None, engine=engine,
        )
        for engine in ENGINES
    }


def _snapshot_replay(cache, sql, reference):
    """Serialize the cached plan, instantiate it back on the same node,
    execute, and require identical rows.  Plans outside the snapshot
    vocabulary (shipped subqueries) are exempt by design."""
    plan = cache._plan_cache.get(sql)
    if plan is None:
        plan = cache.optimize(sql)
    try:
        snapshot = serialize_plan(plan, engine=cache.engine)
    except SnapshotUnsupported:
        return
    replayed = cache._execute_plan(
        instantiate_snapshot(snapshot, cache), sql_text=sql
    )
    assert Counter(replayed.rows) == reference, ("snapshot", sql)


class TestPaperSetupEquivalence:
    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4", "q5", "q6", "q7"])
    def test_plan_choice_queries(self, paper_envs, name):
        sql = plan_choice_query(name)  # SF-1.0 selectivities, like the bench
        row = paper_envs["row"].cache.execute(sql)
        reference = Counter(row.rows)
        for engine in ("batch", "columnar"):
            cache = paper_envs[engine].cache
            result = cache.execute(sql)
            assert Counter(result.rows) == reference, (engine, name)
            assert result.routing == row.routing, (engine, name)
            assert result.warnings == row.warnings, (engine, name)
            assert result.plan.summary() == row.plan.summary(), (engine, name)
            _snapshot_replay(cache, sql, reference)

    @pytest.mark.parametrize("name", ["gq1", "gq2", "gq3"])
    def test_guard_queries(self, paper_envs, name):
        sql = guard_query(name, scale_factor=0.002)
        row = paper_envs["row"].cache.execute(sql)
        reference = Counter(row.rows)
        for engine in ("batch", "columnar"):
            cache = paper_envs[engine].cache
            result = cache.execute(sql)
            assert Counter(result.rows) == reference, (engine, name)
            assert result.routing == row.routing, (engine, name)
            assert result.warnings == row.warnings, (engine, name)
            _snapshot_replay(cache, sql, reference)


def _make_bookstore(engine):
    batch_size = 1 if engine == "row" else 256
    backend = BackendServer(batch_size=batch_size, engine=engine)
    load_bookstore(backend, n_books=30)
    cache = MTCache(backend, batch_size=batch_size, engine=engine,
                    fallback_policy="serve_stale")
    cache.create_region("books_r", 3600.0, 1.0, heartbeat_interval=1.0)
    cache.create_matview("books_copy", "books", ["isbn", "title", "price"],
                         region="books_r")
    cache.create_matview("reviews_copy", "reviews",
                         ["review_id", "isbn", "rating"], region="books_r")
    cache.run_for(3601)
    return cache

BOOK_JOIN = "SELECT b.isbn, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn"


class TestWalkthroughEquivalence:
    @pytest.mark.parametrize("currency", [
        "",
        " CURRENCY BOUND 2 HOUR ON (b), 2 HOUR ON (r)",
        " CURRENCY BOUND 10 MIN ON (b, r)",
        # Mid-cycle the replicas are ~30 min stale: the optimizer still
        # picks the guarded plan for a 30-minute bound, the guard fails at
        # run time, and serve_stale attaches warnings — which must match.
        " CURRENCY BOUND 30 MIN ON (b), 30 MIN ON (r)",
    ])
    def test_bookstore_join(self, currency):
        sql = BOOK_JOIN + currency
        caches = {}
        for engine in ENGINES:
            caches[engine] = _make_bookstore(engine)
            caches[engine].run_for(1800)
        row = caches["row"].execute(sql)
        for engine in ("batch", "columnar"):
            result = caches[engine].execute(sql)
            assert Counter(result.rows) == Counter(row.rows), (engine, currency)
            assert result.routing == row.routing, (engine, currency)
            assert result.warnings == row.warnings, (engine, currency)

    def test_serve_stale_warnings_fire_identically(self):
        sql = BOOK_JOIN + " CURRENCY BOUND 30 MIN ON (b), 30 MIN ON (r)"
        results = {}
        for engine in ENGINES:
            cache = _make_bookstore(engine)
            cache.run_for(1800)
            results[engine] = cache.execute(sql)
        # Guard equivalence must not be vacuous: this shape fails its
        # guards mid-cycle under every engine.
        assert len(results["row"].warnings) == 2
        assert results["batch"].warnings == results["row"].warnings
        assert results["columnar"].warnings == results["row"].warnings


class TestEngineKnobs:
    def test_mtcache_rejects_bad_batch_sizes(self):
        backend = BackendServer()
        for bad in (0, -1, 2.5, "256", True, None):
            with pytest.raises(ValueError, match="batch_size"):
                MTCache(backend, batch_size=bad)

    def test_backend_rejects_bad_batch_sizes(self):
        for bad in (0, -3, 1.0, "row", False):
            with pytest.raises(ValueError, match="batch_size"):
                BackendServer(batch_size=bad)

    def test_bad_engine_names_rejected(self):
        backend = BackendServer()
        for bad in ("vectorized", "columns", 7):
            with pytest.raises(ValueError, match="engine"):
                BackendServer(engine=bad)
            with pytest.raises(ValueError, match="engine"):
                MTCache(backend, engine=bad)

    def test_default_engine_is_columnar(self):
        backend = BackendServer()
        assert backend.engine == "columnar"
        assert MTCache(backend).engine == "columnar"

    def test_batch_size_one_forces_row_engine(self):
        backend = BackendServer(batch_size=1)
        assert backend.engine == "row"
        # Even an explicit columnar request: a 1-row batch is just a row.
        assert BackendServer(batch_size=1, engine="columnar").engine == "row"
        assert MTCache(backend, batch_size=1, engine="columnar").engine == "row"

    def test_knob_is_keyword_only(self):
        backend = BackendServer()
        with pytest.raises(TypeError):
            MTCache(backend, None, "remote", 128, None, 64)  # noqa: PLE (positional)

    def test_batch_size_one_forces_row_path(self, engines):
        row = engines["row"]
        assert row.executor.batch_size == 1
        # The row engine never moves chunks, so the batch counter stays 0.
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        row.executor.set_registry(registry)
        try:
            row.execute("SELECT r.a FROM r")
            assert registry.counter("engine_batches_total").value == 0
        finally:
            row.executor.set_registry(row.metrics)

    def test_batch_engine_counts_batches_and_fused_pipelines(self, engines):
        batch = engines["batch"]
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        batch.executor.set_registry(registry)
        try:
            batch.execute("SELECT r.a FROM r WHERE r.a < 20")
            assert registry.counter("engine_batches_total").value >= 1
            assert registry.counter("engine_fused_pipelines_total").value >= 1
        finally:
            batch.executor.set_registry(batch.metrics)
