"""Batch-engine equivalence: batch execution == row execution, everywhere.

The batch engine (``batch_size`` > 1, the default) and the legacy row
engine (``batch_size=1``) must be observationally identical: same rows,
same warnings, same routing, for every query shape the other suites
exercise.  This module drives both engines over

* the deterministic enumeration of every query shape from
  ``test_optimizer_equivalence.py`` (scans, aggregates, 2/3-way joins,
  self joins, IN-subqueries, ORDER BY / DISTINCT / LIMIT) on the
  back-end server, and
* the paper environments from ``test_paper_walkthrough.py`` and the
  plan-choice benches (guarded SwitchUnion plans, serve-stale warnings,
  mixed routing) on MTCache,

asserting zero diffs.  It also pins down the ``batch_size`` knob's
contract on both servers.
"""

from collections import Counter

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.workloads.bookstore import load_bookstore
from repro.workloads.experiment import build_paper_setup
from repro.workloads.queries import guard_query, plan_choice_query

# The query-shape vocabulary of test_optimizer_equivalence.py, enumerated
# exhaustively instead of sampled.
PREDICATES_R = [
    "", "r.a < 20", "r.b = 3", "r.c > 5.0", "r.a BETWEEN 10 AND 40",
    "r.b = 3 AND r.a < 30", "r.a < 20 OR r.c > 10.0", "NOT r.b = 2",
    "r.b IN (1, 2, 3)",
]
PREDICATES_JOIN = ["", "s.y = 2", "r.a + s.x < 30", "s.y < r.b"]
ITEMS = ["r.a", "r.a, r.c", "r.b, r.a", "r.a, r.b, r.c"]


def _make_server(batch_size):
    backend = BackendServer(batch_size=batch_size)
    backend.create_table(
        "CREATE TABLE r (a INT NOT NULL, b INT NOT NULL, c FLOAT NOT NULL, "
        "PRIMARY KEY (a))"
    )
    backend.create_table(
        "CREATE TABLE s (x INT NOT NULL, y INT NOT NULL, PRIMARY KEY (x))"
    )
    backend.create_table(
        "CREATE TABLE u (p INT NOT NULL, q INT NOT NULL, PRIMARY KEY (p))"
    )
    r_rows = ", ".join(f"({i}, {i % 7}, {float(i % 13)})" for i in range(1, 61))
    s_rows = ", ".join(f"({i}, {i % 5})" for i in range(1, 41))
    u_rows = ", ".join(f"({i}, {i % 3})" for i in range(1, 31))
    backend.execute(f"INSERT INTO r VALUES {r_rows}")
    backend.execute(f"INSERT INTO s VALUES {s_rows}")
    backend.execute(f"INSERT INTO u VALUES {u_rows}")
    backend.execute("CREATE INDEX ix_r_b ON r (b)")
    backend.refresh_statistics()
    return backend


@pytest.fixture(scope="module")
def engines():
    """(batch backend, row backend) over identical data."""
    return _make_server(256), _make_server(1)


def _assert_same_bag(engines, sql):
    batch, row = engines
    assert Counter(batch.execute(sql).rows) == Counter(row.execute(sql).rows), sql


def _assert_same_list(engines, sql):
    batch, row = engines
    assert batch.execute(sql).rows == row.execute(sql).rows, sql


class TestBackendEquivalence:
    @pytest.mark.parametrize("predicate", PREDICATES_R)
    @pytest.mark.parametrize("items", ITEMS)
    def test_scan_queries(self, engines, predicate, items):
        where = f" WHERE {predicate}" if predicate else ""
        _assert_same_bag(engines, f"SELECT {items} FROM r{where}")

    @pytest.mark.parametrize("predicate", PREDICATES_R)
    def test_aggregates(self, engines, predicate):
        where = f" WHERE {predicate}" if predicate else ""
        _assert_same_bag(
            engines,
            f"SELECT r.b, COUNT(*) AS n, SUM(r.c) AS total FROM r{where} GROUP BY r.b",
        )

    @pytest.mark.parametrize("pred_r", PREDICATES_R)
    @pytest.mark.parametrize("pred_join", PREDICATES_JOIN)
    def test_two_way_joins(self, engines, pred_r, pred_join):
        conjuncts = ["r.a = s.x"]
        if pred_r:
            conjuncts.append(pred_r)
        if pred_join:
            conjuncts.append(pred_join)
        _assert_same_bag(
            engines,
            f"SELECT r.a, r.b, s.y FROM r, s WHERE {' AND '.join(conjuncts)}",
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    @pytest.mark.parametrize("join2", ["s.x = u.p", "r.b = u.q"])
    def test_three_way_joins(self, engines, pred, join2):
        conjuncts = ["r.a = s.x", join2]
        if pred:
            conjuncts.append(pred)
        _assert_same_bag(
            engines,
            f"SELECT r.a, s.y, u.q FROM r, s, u WHERE {' AND '.join(conjuncts)}",
        )

    @pytest.mark.parametrize("pred", ["", "x.b = 2", "y.b = 3", "x.a < y.a"])
    def test_self_joins(self, engines, pred):
        conjuncts = ["x.b = y.b"]
        if pred:
            conjuncts.append(pred)
        _assert_same_bag(
            engines,
            f"SELECT x.a, y.a FROM r x, r y WHERE {' AND '.join(conjuncts)}",
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    @pytest.mark.parametrize("inner", ["s.y = 2", "s.y < 3", "s.x > 20", ""])
    def test_in_subqueries(self, engines, pred, inner):
        inner_where = f" WHERE {inner}" if inner else ""
        conjuncts = [f"r.b IN (SELECT s.y FROM s{inner_where})"]
        if pred:
            conjuncts.append(pred)
        _assert_same_bag(
            engines, f"SELECT r.a, r.b FROM r WHERE {' AND '.join(conjuncts)}"
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    @pytest.mark.parametrize("direction", ["ASC", "DESC"])
    def test_order_by(self, engines, pred, direction):
        where = f" WHERE {pred}" if pred else ""
        # Unique sort key -> a total order both engines must agree on.
        _assert_same_list(
            engines, f"SELECT r.a FROM r{where} ORDER BY r.a {direction}"
        )

    @pytest.mark.parametrize("pred", PREDICATES_R)
    def test_distinct(self, engines, pred):
        where = f" WHERE {pred}" if pred else ""
        _assert_same_bag(engines, f"SELECT DISTINCT r.b FROM r{where}")

    def test_limit(self, engines):
        _assert_same_list(engines, "SELECT r.a FROM r ORDER BY r.a LIMIT 7")


@pytest.fixture(scope="module")
def paper_pair():
    """(batch, row) paper environments, same seed, same settle."""
    return (
        build_paper_setup(scale_factor=0.002, paper_scale_stats=True),
        build_paper_setup(scale_factor=0.002, paper_scale_stats=True, batch_size=1),
    )


class TestPaperSetupEquivalence:
    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4", "q5", "q6", "q7"])
    def test_plan_choice_queries(self, paper_pair, name):
        batch, row = paper_pair
        sql = plan_choice_query(name)  # SF-1.0 selectivities, like the bench
        b = batch.cache.execute(sql)
        r = row.cache.execute(sql)
        assert Counter(b.rows) == Counter(r.rows), name
        assert b.routing == r.routing, name
        assert b.warnings == r.warnings, name
        assert b.plan.summary() == r.plan.summary(), name

    @pytest.mark.parametrize("name", ["gq1", "gq2", "gq3"])
    def test_guard_queries(self, paper_pair, name):
        batch, row = paper_pair
        sql = guard_query(name, scale_factor=0.002)
        b = batch.cache.execute(sql)
        r = row.cache.execute(sql)
        assert Counter(b.rows) == Counter(r.rows), name
        assert b.routing == r.routing, name
        assert b.warnings == r.warnings, name


def _make_bookstore(batch_size):
    backend = BackendServer(batch_size=batch_size)
    load_bookstore(backend, n_books=30)
    cache = MTCache(backend, batch_size=batch_size,
                    fallback_policy="serve_stale")
    cache.create_region("books_r", 3600.0, 1.0, heartbeat_interval=1.0)
    cache.create_matview("books_copy", "books", ["isbn", "title", "price"],
                         region="books_r")
    cache.create_matview("reviews_copy", "reviews",
                         ["review_id", "isbn", "rating"], region="books_r")
    cache.run_for(3601)
    return cache

BOOK_JOIN = "SELECT b.isbn, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn"


class TestWalkthroughEquivalence:
    @pytest.mark.parametrize("currency", [
        "",
        " CURRENCY BOUND 2 HOUR ON (b), 2 HOUR ON (r)",
        " CURRENCY BOUND 10 MIN ON (b, r)",
        # Mid-cycle the replicas are ~30 min stale: the optimizer still
        # picks the guarded plan for a 30-minute bound, the guard fails at
        # run time, and serve_stale attaches warnings — which must match.
        " CURRENCY BOUND 30 MIN ON (b), 30 MIN ON (r)",
    ])
    def test_bookstore_join(self, currency):
        batch = _make_bookstore(256)
        row = _make_bookstore(1)
        batch.run_for(1800)
        row.run_for(1800)
        sql = BOOK_JOIN + currency
        b = batch.execute(sql)
        r = row.execute(sql)
        assert Counter(b.rows) == Counter(r.rows), currency
        assert b.routing == r.routing, currency
        assert b.warnings == r.warnings, currency

    def test_serve_stale_warnings_fire_identically(self):
        batch = _make_bookstore(256)
        row = _make_bookstore(1)
        batch.run_for(1800)
        row.run_for(1800)
        sql = BOOK_JOIN + " CURRENCY BOUND 30 MIN ON (b), 30 MIN ON (r)"
        b = batch.execute(sql)
        r = row.execute(sql)
        # Guard equivalence must not be vacuous: this shape fails its
        # guards mid-cycle under both engines.
        assert len(b.warnings) == 2
        assert b.warnings == r.warnings


class TestBatchSizeKnob:
    def test_mtcache_rejects_bad_values(self):
        backend = BackendServer()
        for bad in (0, -1, 2.5, "256", True, None):
            with pytest.raises(ValueError, match="batch_size"):
                MTCache(backend, batch_size=bad)

    def test_backend_rejects_bad_values(self):
        for bad in (0, -3, 1.0, "row", False):
            with pytest.raises(ValueError, match="batch_size"):
                BackendServer(batch_size=bad)

    def test_knob_is_keyword_only(self):
        backend = BackendServer()
        with pytest.raises(TypeError):
            MTCache(backend, None, "remote", 128, None, 64)  # noqa: PLE (positional)

    def test_batch_size_one_forces_row_path(self, engines):
        _, row = engines
        assert row.executor.batch_size == 1
        # The row engine never moves chunks, so the batch counter stays 0.
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        row.executor.set_registry(registry)
        try:
            row.execute("SELECT r.a FROM r")
            assert registry.counter("engine_batches_total").value == 0
        finally:
            row.executor.set_registry(row.metrics)

    def test_batch_engine_counts_batches_and_fused_pipelines(self, engines):
        batch, _ = engines
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        batch.executor.set_registry(registry)
        try:
            batch.execute("SELECT r.a FROM r WHERE r.a < 20")
            assert registry.counter("engine_batches_total").value >= 1
            assert registry.counter("engine_fused_pipelines_total").value >= 1
        finally:
            batch.executor.set_registry(batch.metrics)
