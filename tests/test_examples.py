"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), f"{name} produced no output"


def test_expected_examples_present():
    # The README promises at least these scenarios.
    required = {
        "quickstart.py",
        "bookstore.py",
        "tpcd_cache.py",
        "timeline_session.py",
        "result_cache.py",
        "row_groups.py",
    }
    assert required <= set(EXAMPLES)


class TestExampleOutputs:
    def run(self, name):
        path = pathlib.Path(__file__).parent.parent / "examples" / name
        proc = subprocess.run(
            [sys.executable, str(path)], capture_output=True, text=True, timeout=300
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_quickstart_shows_guarded_plan(self):
        out = self.run("quickstart.py")
        assert "guarded(products_copy)" in out
        assert "remote" in out

    def test_bookstore_shows_constraint_classes(self):
        out = self.run("bookstore.py")
        assert "class (b, r) within 600s" in out
        assert "class (b, r, s) within 300s" in out

    def test_timeline_shows_anomaly_and_fix(self):
        out = self.run("timeline_session.py")
        assert "time moved backwards" in out
        assert "150.00" in out

    def test_tpcd_plan_choices(self):
        out = self.run("tpcd_cache.py")
        assert "q2: hashjoin(remote, remote)" in out
        assert "q7: guarded(cust_prj)" in out

    def test_row_groups_progression(self):
        out = self.run("row_groups.py")
        assert "per-row: consistent" in out
        assert "broken" in out
