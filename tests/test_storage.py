"""Tests for schemas, indexes and heap tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CatalogError, StorageError
from repro.storage.index import Index
from repro.storage.schema import Column, DataType, Schema
from repro.storage.table import HeapTable


def people_schema():
    return Schema(
        [
            Column("id", DataType.INT, nullable=False),
            Column("name", DataType.STRING),
            Column("age", DataType.INT),
        ]
    )


class TestDataType:
    def test_int_accepts_int(self):
        assert DataType.INT.validate(3)

    def test_int_rejects_bool(self):
        assert not DataType.INT.validate(True)

    def test_int_rejects_float(self):
        assert not DataType.INT.validate(3.5)

    def test_float_accepts_int_and_float(self):
        assert DataType.FLOAT.validate(3)
        assert DataType.FLOAT.validate(3.5)

    def test_string_accepts_str(self):
        assert DataType.STRING.validate("x")
        assert not DataType.STRING.validate(1)

    def test_bool(self):
        assert DataType.BOOL.validate(False)
        assert not DataType.BOOL.validate(0)

    def test_timestamp_is_numeric(self):
        assert DataType.TIMESTAMP.validate(1.5)
        assert not DataType.TIMESTAMP.validate("now")


class TestSchema:
    def test_names_in_order(self):
        assert people_schema().names() == ["id", "name", "age"]

    def test_lookup_case_insensitive(self):
        schema = people_schema()
        assert schema.index_of("NAME") == 1
        assert schema.has_column("AGE")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            people_schema().index_of("salary")

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([Column("a", DataType.INT), Column("A", DataType.STRING)])

    def test_project_preserves_order_given(self):
        projected = people_schema().project(["age", "id"])
        assert projected.names() == ["age", "id"]

    def test_validate_row_ok(self):
        people_schema().validate_row((1, "ann", 30))

    def test_validate_row_arity(self):
        with pytest.raises(StorageError):
            people_schema().validate_row((1, "ann"))

    def test_validate_row_not_null(self):
        with pytest.raises(StorageError):
            people_schema().validate_row((None, "ann", 30))

    def test_validate_row_nullable_ok(self):
        people_schema().validate_row((1, None, None))

    def test_validate_row_type(self):
        with pytest.raises(StorageError):
            people_schema().validate_row((1, "ann", "thirty"))


class TestIndex:
    def make(self, unique=False):
        # Key on column positions (0,) of rows like (k, payload)
        return Index("ix", ["k"], [0], unique=unique)

    def test_insert_and_seek(self):
        ix = self.make()
        ix.insert((5, "a"), 0)
        ix.insert((3, "b"), 1)
        assert list(ix.seek((5,))) == [0]
        assert list(ix.seek((3,))) == [1]
        assert list(ix.seek((4,))) == []

    def test_duplicates_allowed_when_not_unique(self):
        ix = self.make()
        ix.insert((5, "a"), 0)
        ix.insert((5, "b"), 1)
        assert sorted(ix.seek((5,))) == [0, 1]

    def test_unique_violation(self):
        ix = self.make(unique=True)
        ix.insert((5, "a"), 0)
        with pytest.raises(StorageError):
            ix.insert((5, "b"), 1)

    def test_delete(self):
        ix = self.make()
        ix.insert((5, "a"), 0)
        ix.delete((5, "a"), 0)
        assert list(ix.seek((5,))) == []

    def test_delete_missing_raises(self):
        ix = self.make()
        with pytest.raises(StorageError):
            ix.delete((5, "a"), 0)

    def test_range_inclusive(self):
        ix = self.make()
        for i, key in enumerate([1, 3, 5, 7, 9]):
            ix.insert((key, ""), i)
        keys = [k[0] for k, _ in ix.range(low=(3,), high=(7,))]
        assert keys == [3, 5, 7]

    def test_range_exclusive_low(self):
        ix = self.make()
        for i, key in enumerate([1, 3, 5, 7]):
            ix.insert((key, ""), i)
        keys = [k[0] for k, _ in ix.range(low=(3,), low_inclusive=False)]
        assert keys == [5, 7]

    def test_range_exclusive_high(self):
        ix = self.make()
        for i, key in enumerate([1, 3, 5, 7]):
            ix.insert((key, ""), i)
        keys = [k[0] for k, _ in ix.range(high=(5,), high_inclusive=False)]
        assert keys == [1, 3]

    def test_range_unbounded(self):
        ix = self.make()
        for i, key in enumerate([2, 1, 3]):
            ix.insert((key, ""), i)
        keys = [k[0] for k, _ in ix.range()]
        assert keys == [1, 2, 3]

    def test_composite_key_prefix_range(self):
        ix = Index("ix", ["a", "b"], [0, 1])
        rows = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1)]
        for i, row in enumerate(rows):
            ix.insert(row, i)
        matched = [k for k, _ in ix.range(low=(2,), high=(2,))]
        assert matched == [(2, 1), (2, 2)]

    def test_composite_prefix_exclusive(self):
        ix = Index("ix", ["a", "b"], [0, 1])
        rows = [(1, 9), (2, 0), (2, 9), (3, 0)]
        for i, row in enumerate(rows):
            ix.insert(row, i)
        matched = [k for k, _ in ix.range(low=(1,), low_inclusive=False)]
        assert matched == [(2, 0), (2, 9), (3, 0)]

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
    def test_range_matches_naive_filter(self, keys):
        ix = self.make()
        for i, key in enumerate(keys):
            ix.insert((key, ""), i)
        low, high = 10, 35
        got = sorted(k[0] for k, _ in ix.range(low=(low,), high=(high,)))
        want = sorted(k for k in keys if low <= k <= high)
        assert got == want

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=50), unique=True, max_size=60))
    def test_insert_delete_roundtrip(self, keys):
        ix = self.make()
        for i, key in enumerate(keys):
            ix.insert((key, ""), i)
        for i, key in enumerate(keys):
            ix.delete((key, ""), i)
        assert len(ix) == 0


class TestHeapTable:
    def make(self):
        return HeapTable("people", people_schema(), primary_key=["id"])

    def test_insert_returns_rid(self):
        table = self.make()
        rid = table.insert((1, "ann", 30))
        assert table.row(rid) == (1, "ann", 30)

    def test_row_count(self):
        table = self.make()
        table.insert((1, "a", 1))
        table.insert((2, "b", 2))
        assert table.row_count == 2

    def test_pk_index_created(self):
        table = self.make()
        assert table.clustered_index() is not None
        assert table.clustered_index().unique

    def test_pk_lookup(self):
        table = self.make()
        rid = table.insert((7, "g", 70))
        assert table.pk_lookup((7,)) == rid
        assert table.pk_lookup((8,)) is None

    def test_duplicate_pk_rejected_and_heap_unchanged(self):
        table = self.make()
        table.insert((1, "a", 1))
        with pytest.raises(StorageError):
            table.insert((1, "b", 2))
        assert table.row_count == 1

    def test_delete(self):
        table = self.make()
        rid = table.insert((1, "a", 1))
        table.delete(rid)
        assert table.row_count == 0
        assert table.pk_lookup((1,)) is None

    def test_delete_twice_raises(self):
        table = self.make()
        rid = table.insert((1, "a", 1))
        table.delete(rid)
        with pytest.raises(StorageError):
            table.delete(rid)

    def test_update_changes_indexes(self):
        table = self.make()
        rid = table.insert((1, "a", 1))
        table.update(rid, (2, "a", 1))
        assert table.pk_lookup((1,)) is None
        assert table.pk_lookup((2,)) == rid

    def test_update_unique_violation_rolls_back(self):
        table = self.make()
        table.insert((1, "a", 1))
        rid = table.insert((2, "b", 2))
        with pytest.raises(StorageError):
            table.update(rid, (1, "b", 2))
        # Old state fully restored.
        assert table.row(rid) == (2, "b", 2)
        assert table.pk_lookup((2,)) == rid

    def test_xtime_recorded(self):
        table = self.make()
        rid = table.insert((1, "a", 1), xtime=42, commit_time=7.0)
        version = table.version(rid)
        assert version.xtime == 42
        assert version.commit_time == 7.0

    def test_max_xtime(self):
        table = self.make()
        table.insert((1, "a", 1), xtime=3)
        table.insert((2, "b", 2), xtime=9)
        assert table.max_xtime() == 9

    def test_max_xtime_empty(self):
        assert self.make().max_xtime() == 0

    def test_scan_skips_tombstones(self):
        table = self.make()
        table.insert((1, "a", 1))
        rid = table.insert((2, "b", 2))
        table.insert((3, "c", 3))
        table.delete(rid)
        assert [v[0] for _, v in table.scan()] == [1, 3]

    def test_secondary_index_backfilled(self):
        table = self.make()
        table.insert((1, "a", 30))
        table.insert((2, "b", 20))
        ix = table.create_index("by_age", ["age"])
        assert [k[0] for k, _ in ix.scan()] == [20, 30]

    def test_second_clustered_index_rejected(self):
        table = self.make()
        with pytest.raises(CatalogError):
            table.create_index("c2", ["age"], clustered=True)

    def test_index_on_finds_prefix_match(self):
        table = self.make()
        table.create_index("by_age_name", ["age", "name"])
        assert table.index_on(["age"]).name == "by_age_name"
        assert table.index_on(["name"]) is None

    def test_truncate(self):
        table = self.make()
        table.insert((1, "a", 1))
        table.truncate()
        assert table.row_count == 0
        assert len(table.clustered_index()) == 0

    def test_find_by_key(self):
        table = self.make()
        table.create_index("by_age", ["age"])
        table.insert((1, "a", 30))
        table.insert((2, "b", 30))
        rows = list(table.find_by_key("by_age", (30,)))
        assert sorted(r[0] for r in rows) == [1, 2]
