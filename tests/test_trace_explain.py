"""End-to-end query tracing, EXPLAIN ANALYZE, the currency-SLO report,
and the structured event log (repro.obs v2)."""

import io
import json

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.cli import Shell
from repro.fleet import CacheFleet
from repro.obs.events import SEVERITIES, Event, EventLog
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.trace import NULL_TRACE, TraceContext, TraceExporter, TraceLog
from repro.optimizer.cost import q_error
from repro.sql.parser import parse
from repro.workloads.driver import WorkloadDriver, point_lookup_factory

GUARDED = "SELECT t.id, t.v FROM t WHERE t.v > 20 CURRENCY BOUND 600 SEC ON (t)"
REMOTE_ONLY = "SELECT t.id, t.v FROM t CURRENCY BOUND 0 SEC ON (t)"


def make_backend(rows=20):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    values = ", ".join(f"({i}, {i * 10})" for i in range(1, rows + 1))
    backend.execute(f"INSERT INTO t VALUES {values}")
    backend.refresh_statistics()
    return backend


def make_cache(settle=True, **kwargs):
    backend = make_backend()
    cache = MTCache(backend, **kwargs)
    cache.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r")
    if settle:
        cache.run_for(6.0)
    return cache


def make_fleet(n_nodes=3, settle=True, **kwargs):
    backend = make_backend()
    fleet = CacheFleet(backend, n_nodes=n_nodes, **kwargs)
    fleet.create_region("r", 4.0, 1.0, heartbeat_interval=0.5)
    fleet.create_matview("t_copy", "t", ["id", "v"], region="r")
    if settle:
        fleet.run_for(6.0)
    return fleet


# ======================================================================
# Trace context propagation
# ======================================================================
class TestTracePropagation:
    def test_single_cache_query_yields_one_trace(self):
        cache = make_cache()
        result = cache.execute(GUARDED)
        assert result.trace_id is not None
        trace = cache.traces.get(result.trace_id)
        assert trace is not None and trace.finished
        names = {span.name for span in trace.spans}
        assert {"parse", "optimize", "mtcache.execute", "exec.run"} <= names
        assert all(span.trace_id == result.trace_id for span in trace.spans)

    def test_exec_phase_spans_parent_mtcache_execute(self):
        cache = make_cache()
        result = cache.execute(GUARDED)
        trace = cache.traces.get(result.trace_id)
        by_name = {span.name: span for span in trace.spans}
        execute = by_name["mtcache.execute"]
        for phase in ("exec.setup", "exec.run", "exec.shutdown"):
            assert by_name[phase].parent_id == execute.span_id

    def test_fleet_trace_spans_router_node_and_network(self):
        fleet = make_fleet()
        result = fleet.execute(REMOTE_ONLY)
        trace = fleet.traces.get(result.trace_id)
        assert trace is not None
        names = {span.name for span in trace.spans}
        assert {"fleet.route", "parse", "optimize", "mtcache.execute",
                "net.call"} <= names
        # One tree: every span carries the router's trace id, and the root
        # is the router span.
        assert all(span.trace_id == result.trace_id for span in trace.spans)
        root = trace.root()
        assert root.name == "fleet.route"
        assert root.attrs["node"] == result.node
        net = next(s for s in trace.spans if s.name == "net.call")
        assert net.attrs["outcome"] == "ok"

    def test_guarded_fleet_query_traces_without_network_hop(self):
        fleet = make_fleet()
        result = fleet.execute(GUARDED)
        trace = fleet.traces.get(result.trace_id)
        names = [span.name for span in trace.spans]
        assert "fleet.route" in names and "net.call" not in names

    def test_trace_log_is_bounded_and_searchable(self):
        log = TraceLog(capacity=2)
        traces = [TraceContext() for _ in range(3)]
        for trace in traces:
            trace.record(object())  # non-empty so record() keeps it
            log.record(trace)
        assert len(log) == 2
        assert log.get(traces[0].trace_id) is None
        assert log.get(traces[2].trace_id) is traces[2]
        assert log.latest() is traces[2]

    def test_null_trace_is_falsy_and_inert(self):
        assert not NULL_TRACE
        assert NULL_TRACE.trace_id is None
        span = NULL_TRACE.span("anything", attr=1)
        with span:
            pass
        assert NULL_TRACE.spans == ()

    def test_fresh_trace_context_is_truthy(self):
        # ``if trace:`` is the fast-path test; a 0-span trace must pass it.
        assert TraceContext()

    def test_untraced_cache_records_nothing(self):
        cache = make_cache(metrics=NullRegistry())
        result = cache.execute(GUARDED)
        assert result.trace_id is None
        assert len(cache.traces) == 0


# ======================================================================
# Span stack leak fix
# ======================================================================
class TestSpanStackLeak:
    def test_exception_unwinding_nested_spans_leaves_clean_stack(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                inner = registry.span("inner").__enter__()  # noqa: F841
                orphan = registry.span("orphan").__enter__()  # noqa: F841
                raise RuntimeError("boom")
        assert registry.span_log.stack == []
        # The orphans were finalized (elapsed set) despite never exiting.
        finished = {span.name for span in registry.span_log.recent(10)}
        assert finished == {"outer", "inner", "orphan"}
        for span in registry.span_log.recent(10):
            assert span.elapsed is not None

    def test_orphan_keeps_parent_attribution(self):
        registry = MetricsRegistry()
        outer = registry.span("outer").__enter__()
        registry.span("inner").__enter__()
        outer.__exit__(None, None, None)
        by_name = {s.name: s for s in registry.span_log.recent(10)}
        assert by_name["inner"].parent == "outer"
        assert by_name["inner"].depth == 1

    def test_double_exit_is_idempotent(self):
        registry = MetricsRegistry()
        span = registry.span("once").__enter__()
        span.__exit__(None, None, None)
        elapsed = span.elapsed
        span.__exit__(None, None, None)
        assert span.elapsed == elapsed
        assert len(registry.span_log) == 1


# ======================================================================
# Histogram percentiles (linear interpolation)
# ======================================================================
class TestPercentileInterpolation:
    def make(self, values):
        from repro.obs.metrics import Histogram

        hist = Histogram()
        for value in values:
            hist.observe(value)
        return hist

    def test_even_count_interpolates_midpoint(self):
        assert self.make([1, 2, 3, 4]).percentile(50) == 2.5

    def test_p0_and_p100_are_window_extremes(self):
        hist = self.make([5, 1, 3])
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 5
        assert hist.percentile(-5) == 1
        assert hist.percentile(250) == 5

    def test_single_sample_is_every_percentile(self):
        hist = self.make([7.5])
        for p in (0, 25, 50, 99, 100):
            assert hist.percentile(p) == 7.5

    def test_empty_histogram_is_zero(self):
        assert self.make([]).percentile(50) == 0.0

    def test_interpolation_between_ranks(self):
        # ranks 0..3; p75 -> rank 2.25 -> 30 + 0.25*10
        assert self.make([10, 20, 30, 40]).percentile(75) == pytest.approx(32.5)


# ======================================================================
# render_text determinism
# ======================================================================
class TestRenderText:
    def fill(self, registry, order):
        for routing in order:
            registry.counter(
                "queries_total", labels={"routing": routing},
                help="SELECTs by routing",
            ).inc()
        registry.histogram("t_seconds", labels={"phase": "run"},
                           help="phase time").observe(1.0)

    def test_help_and_type_once_per_family(self):
        registry = MetricsRegistry()
        self.fill(registry, ["local", "remote", "mixed"])
        text = registry.render_text()
        assert text.count("# HELP queries_total") == 1
        assert text.count("# TYPE queries_total") == 1
        assert text.count("# TYPE t_seconds summary") == 1

    def test_series_order_is_insertion_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self.fill(a, ["remote", "local"])
        self.fill(b, ["local", "remote"])
        assert a.render_text() == b.render_text()

    def test_series_sorted_within_family(self):
        registry = MetricsRegistry()
        self.fill(registry, ["remote", "local"])
        text = registry.render_text()
        assert text.index('routing="local"') < text.index('routing="remote"')


# ======================================================================
# Registry API parity and kind mismatches
# ======================================================================
class TestRegistryParity:
    def public_api(self, cls):
        return {
            name
            for name in dir(cls)
            if not name.startswith("_") and callable(getattr(cls, name))
        }

    def test_null_registry_mirrors_real_registry(self):
        real = self.public_api(MetricsRegistry)
        null = self.public_api(NullRegistry)
        assert real == null, (
            f"registry APIs drifted: only in MetricsRegistry {real - null}, "
            f"only in NullRegistry {null - real}"
        )

    def test_null_registry_shared_attributes(self):
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.family("anything") == {}
        assert NULL_REGISTRY.event("k", "m") is None
        assert NULL_REGISTRY.new_trace() is NULL_TRACE
        assert len(NULL_REGISTRY.events) == 0

    def test_kind_mismatch_on_existing_series(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter, not a histogram"):
            registry.histogram("x")

    def test_kind_mismatch_on_known_family_new_labels(self):
        registry = MetricsRegistry()
        registry.counter("x", labels={"a": "1"})
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.gauge("x", labels={"a": "2"})


# ======================================================================
# Event log
# ======================================================================
class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record("guard", "stale", severity="warning", time=1.0, view="v")
        log.record("breaker", "opened", severity="error", time=2.0)
        log.record("guard", "ok", time=3.0)
        assert len(log) == 3
        assert [e.kind for e in log.recent(10, kind="guard")] == ["guard", "guard"]
        severe = log.recent(10, min_severity="warning")
        assert [e.severity for e in severe] == ["warning", "error"]
        assert log.counts_by_kind() == {"guard": 2, "breaker": 1}
        assert log.counts_by_severity() == {"warning": 1, "error": 1, "info": 1}

    def test_capacity_ring(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.record("k", f"m{i}", time=float(i))
        assert [e.message for e in log.recent(10)] == ["m3", "m4"]

    def test_zero_capacity_drops(self):
        log = EventLog(capacity=0)
        assert log.record("k", "m") is None
        assert len(log) == 0

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Event("k", "m", severity="fatal")

    def test_severity_order(self):
        assert (SEVERITIES["debug"] < SEVERITIES["info"]
                < SEVERITIES["warning"] < SEVERITIES["error"])

    def test_attrs_captured(self):
        event = EventLog().record("guard", "m", view="t_copy", region="r")
        assert event.attrs == {"view": "t_copy", "region": "r"}


# ======================================================================
# EXPLAIN ANALYZE
# ======================================================================
class TestExplainAnalyze:
    def executed(self, records):
        return [r for r in records if r["executed"]]

    def test_batch_engine_estimates_vs_actuals(self):
        cache = make_cache()
        result = cache.explain(GUARDED, analyze=True)
        records = result.analysis
        assert len(records) >= 3
        for record in self.executed(records):
            assert record["est_rows"] is not None
            assert record["loops"] >= 1
            assert record["q_error"] is not None and record["q_error"] >= 1.0
        switch = next(r for r in records if r["op"] == "SwitchUnion")
        assert switch["branch"] == "local"
        remote = next(r for r in records if r["op"] == "RemoteQuery")
        assert not remote["executed"] and remote["q_error"] is None

    def test_row_engine_estimates_vs_actuals(self):
        cache = make_cache(batch_size=1)
        result = cache.explain(GUARDED, analyze=True)
        executed = self.executed(result.analysis)
        assert executed
        for record in executed:
            assert record["q_error"] is not None
            assert record["batches"] == 0  # row engine exchanges no chunks
        rows_out = [r["actual_rows"] for r in executed]
        assert max(rows_out) > 0

    def test_engines_agree_on_actual_rows(self):
        batch = make_cache().explain(GUARDED, analyze=True).analysis
        row = make_cache(batch_size=1).explain(GUARDED, analyze=True).analysis
        key = lambda r: (r["op"], r["depth"])  # noqa: E731
        assert (
            [(key(r), r["actual_rows"]) for r in batch if r["executed"]]
            == [(key(r), r["actual_rows"]) for r in row if r["executed"]]
        )

    def test_q_error_histogram_populated(self):
        cache = make_cache()
        cache.explain(GUARDED, analyze=True)
        family = cache.metrics.family("cost_model_q_error")
        assert family
        ops = {dict(key)["op"] for key in family}
        assert "SwitchUnion" in ops
        for hist in family.values():
            assert hist.count >= 1 and hist.min >= 1.0

    def test_explain_analyze_sql_statement(self):
        cache = make_cache()
        result = cache.execute("EXPLAIN ANALYZE " + GUARDED)
        assert result.columns == ["plan"]
        text = "\n".join(line for (line,) in result.rows)
        assert "actual:" in text and "q-err" in text and "est.rows" in text
        assert "(never executed)" in text

    def test_plain_explain_does_not_execute(self):
        cache = make_cache()
        result = cache.execute("EXPLAIN " + GUARDED)
        text = "\n".join(line for (line,) in result.rows)
        assert "actual:" not in text
        assert cache.metrics.family("cost_model_q_error") == {}

    def test_parser_round_trip(self):
        stmt = parse("EXPLAIN ANALYZE SELECT t.id FROM t")
        assert stmt.analyze
        assert stmt.to_sql().startswith("EXPLAIN ANALYZE SELECT")
        assert not parse("EXPLAIN SELECT t.id FROM t").analyze

    def test_fused_pipeline_membership_reported(self):
        cache = make_cache()
        records = cache.explain(GUARDED, analyze=True).analysis
        assert any(r["fused"] for r in records if r["executed"])

    def test_q_error_helper(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == 10.0
        assert q_error(10, 100) == 10.0
        assert q_error(0, 0) == 1.0  # eps clamp keeps zero rows finite


# ======================================================================
# Exporters
# ======================================================================
class TestTraceExporters:
    def test_ascii_tree_shape(self):
        cache = make_cache()
        result = cache.execute(GUARDED)
        trace = cache.traces.get(result.trace_id)
        text = TraceExporter().ascii_tree(trace)
        assert text.startswith(f"trace {result.trace_id}:")
        assert "mtcache.execute" in text and "exec.run" in text
        assert "└─" in text

    def test_chrome_json_events(self):
        fleet = make_fleet()
        result = fleet.execute(REMOTE_ONLY)
        trace = fleet.traces.get(result.trace_id)
        payload = json.loads(TraceExporter().chrome_json(trace))
        events = payload["traceEvents"]
        assert len(events) == len(trace.spans)
        names = {event["name"] for event in events}
        assert "fleet.route" in names and "net.call" in names
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0


# ======================================================================
# Currency-SLO report
# ======================================================================
class TestSLOReport:
    def test_slack_reflects_agent_stall(self):
        fleet = make_fleet(n_nodes=1)
        node = fleet.nodes[0]
        fleet.execute(GUARDED)
        before = fleet.slo_report()["slack"][node.name][f"r@{node.name}"]
        fleet.network.stall_agents(100.0)
        fleet.run_for(40.0)
        fleet.execute(GUARDED)
        after = fleet.slo_report()["slack"][node.name][f"r@{node.name}"]
        # The stalled agent let staleness grow, so the newest slack
        # observation drags the window minimum down.
        assert after["min"] < before["min"]
        assert after["count"] == before["count"] + 1

    def test_bound_missed_flag_and_stale_outcome(self):
        fleet = make_fleet(n_nodes=1, fallback_policy="serve_stale")
        node = fleet.nodes[0]
        fleet.network.stall_agents(1000.0)
        fleet.run_for(700.0)  # staleness > 600s bound
        result = fleet.execute(GUARDED)
        assert result.warnings
        report = fleet.slo_report()
        slack = report["slack"][node.name][f"r@{node.name}"]
        assert slack["bound_missed"] and slack["min"] < 0
        assert report["guard_outcomes"][node.name]["stale"] >= 1
        assert report["events"].get("guard", 0) >= 1

    def test_degraded_and_breaker_sections(self):
        fleet = make_fleet(n_nodes=1, failure_threshold=1)
        fleet.execute(GUARDED)  # fresh: served locally
        fleet.network.stall_agents(1000.0)
        fleet.run_for(700.0)  # staleness > 600s bound
        fleet.network.inject_outage(50.0)
        fleet.execute(GUARDED)  # wants remote, back-end down -> degraded
        report = fleet.slo_report()
        assert report["degraded"] >= 1
        assert report["events"].get("outage", 0) >= 1
        assert report["events"].get("degraded", 0) >= 1
        assert report["routing"]["node0"] >= 2

    def test_event_timeline_orders_mixed_sources(self):
        fleet = make_fleet(n_nodes=2)
        fleet.network.stall_agents(5.0, node="node1")
        fleet.network.inject_outage(2.0)
        report = fleet.slo_report()
        assert report["events"]["agent_stall"] == 1
        assert report["events"]["outage"] == 1


# ======================================================================
# CLI
# ======================================================================
class TestCLI:
    def shell(self, target):
        out = io.StringIO()
        return Shell(target, out=out), out

    def test_trace_command(self):
        fleet = make_fleet()
        shell, out = self.shell(fleet)
        shell.handle("\\trace")
        assert "(no trace recorded)" in out.getvalue()
        shell.handle(GUARDED)
        shell.handle("\\trace")
        text = out.getvalue()
        assert "fleet.route" in text and "mtcache.execute" in text

    def test_trace_json_command(self):
        fleet = make_fleet()
        shell, out = self.shell(fleet)
        shell.handle(GUARDED)
        out.truncate(0), out.seek(0)
        shell.handle("\\trace json")
        payload = json.loads(out.getvalue())
        assert payload["traceEvents"]

    def test_trace_by_id(self):
        cache = make_cache()
        shell, out = self.shell(cache)
        shell.handle(GUARDED)
        trace_id = cache.traces.latest().trace_id
        shell.handle(f"\\trace {trace_id}")
        assert f"trace {trace_id}:" in out.getvalue()
        shell.handle("\\trace t999999")
        assert "no trace 't999999'" in out.getvalue()

    def test_explain_command(self):
        cache = make_cache()
        shell, out = self.shell(cache)
        shell.handle("\\explain " + GUARDED)
        text = out.getvalue()
        assert "est.rows" in text and "act.rows" in text and "actual:" in text
        assert "trace:" in text

    def test_events_command(self):
        fleet = make_fleet()
        shell, out = self.shell(fleet)
        fleet.network.inject_outage(5.0)
        shell.handle("\\events")
        text = out.getvalue()
        assert "outage" in text and "[error" in text

    def test_events_empty(self):
        cache = make_cache(settle=False)
        cache.metrics.events.clear()
        shell, out = self.shell(cache)
        shell.handle("\\events")
        assert "(no events recorded)" in out.getvalue()

    def test_help_lists_new_commands(self):
        cache = make_cache(settle=False)
        shell, out = self.shell(cache)
        shell.handle("\\help")
        text = out.getvalue()
        for command in ("\\explain", "\\trace", "\\events"):
            assert command in text


# ======================================================================
# Workload driver integration
# ======================================================================
class TestDriverObservability:
    def test_report_collects_trace_ids_and_events(self):
        fleet = make_fleet()
        driver = WorkloadDriver(fleet, seed=1)
        factory = point_lookup_factory("t", "id", (1, 20))
        report = driver.run(factory, bounds=[600], n_queries=5, think_time=0.5)
        assert len(report.trace_ids) == 5
        assert all(fleet.traces.get(tid) is not None for tid in report.trace_ids)
        # Replication events from the settled fleet show up in the report.
        assert any(e.kind == "replication" for e in report.events)
