"""Tests for administrative APIs: dropping views and regions, and the
IN-list selectivity support added alongside them."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.common.errors import CatalogError


@pytest.fixture()
def cache():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    rows = ", ".join(f"({i}, {i % 10})" for i in range(1, 101))
    backend.execute(f"INSERT INTO t VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11)
    return cache


LOCAL_Q = "SELECT x.id FROM t x CURRENCY BOUND 600 SEC ON (x)"


class TestDropMatview:
    def test_dropped_view_no_longer_used(self, cache):
        assert cache.execute(LOCAL_Q).plan.summary() == "guarded(t_copy)"
        cache.drop_matview("t_copy")
        assert cache.execute(LOCAL_Q).plan.summary() == "remote"

    def test_dropped_view_stops_receiving_updates(self, cache):
        view = cache.drop_matview("t_copy")
        rows_before = view.table.row_count
        cache.backend.execute("INSERT INTO t VALUES (999, 1)")
        cache.run_for(20.0)
        assert view.table.row_count == rows_before

    def test_region_forgets_view(self, cache):
        cache.drop_matview("t_copy")
        assert cache.catalog.region("r1").view_names == []

    def test_drop_unknown_view(self, cache):
        with pytest.raises(CatalogError):
            cache.drop_matview("nope")

    def test_other_views_unaffected(self, cache):
        cache.create_matview("t2", "t", ["id"], region="r1")
        cache.drop_matview("t_copy")
        cache.backend.execute("INSERT INTO t VALUES (999, 1)")
        cache.run_for(20.0)
        assert cache.catalog.matview("t2").table.row_count == 101


class TestDropRegion:
    def test_drop_empty_region(self, cache):
        cache.drop_matview("t_copy")
        cache.drop_region("r1")
        with pytest.raises(CatalogError):
            cache.catalog.region("r1")
        assert "r1" not in cache.agents

    def test_drop_nonempty_region_rejected(self, cache):
        with pytest.raises(CatalogError):
            cache.drop_region("r1")

    def test_dropped_region_stops_heartbeats(self, cache):
        cache.drop_matview("t_copy")
        cache.drop_region("r1")
        hb = cache.backend.catalog.table("heartbeat").table
        (values,) = [v for _, v in hb.scan()]
        before = values[1]
        cache.run_for(10.0)
        (values,) = [v for _, v in hb.scan()]
        assert values[1] == before

    def test_region_can_be_recreated(self, cache):
        cache.drop_matview("t_copy")
        cache.drop_region("r1")
        # The back-end heartbeat row survives; recreating the region with
        # the same cid must fail on the duplicate row, so use a new cid.
        cache.create_region("r1b", 5, 1)
        cache.create_matview("t_again", "t", ["id", "v"], region="r1b")
        cache.run_for(6)
        assert cache.execute(LOCAL_Q).plan.summary() == "guarded(t_again)"


class TestInListSelectivity:
    def test_sarg_extracted(self, cache):
        from repro.optimizer.query_info import analyze_select
        from repro.sql.parser import parse

        info = analyze_select(
            parse("SELECT x.id FROM t x WHERE x.v IN (1, 2, 3)"), cache.backend.catalog
        )
        sargs = info.operand("x").sargs
        assert len(sargs) == 1
        assert sargs[0].op == "in"
        assert sargs[0].value == (1, 2, 3)

    def test_estimate_scales_with_list_size(self, cache):
        backend = cache.backend
        _, rows_small, _ = backend.estimate("SELECT x.id FROM t x WHERE x.v IN (1)")
        _, rows_large, _ = backend.estimate(
            "SELECT x.id FROM t x WHERE x.v IN (1, 2, 3, 4)"
        )
        assert rows_small < rows_large

    def test_non_constant_items_not_sargified(self, cache):
        from repro.optimizer.query_info import analyze_select
        from repro.sql.parser import parse

        info = analyze_select(
            parse("SELECT x.id FROM t x WHERE x.v IN (1, x.id)"), cache.backend.catalog
        )
        assert not info.operand("x").sargs

    def test_execution_correct(self, cache):
        result = cache.backend.execute("SELECT x.id FROM t x WHERE x.v IN (1, 2)")
        assert sorted(r[0] for r in result.rows) == sorted(
            i for i in range(1, 101) if i % 10 in (1, 2)
        )
