"""Tests for the catalog and statistics."""

import pytest

from repro.catalog.catalog import Catalog, data_type_from_sql
from repro.catalog.statistics import ColumnStats, TableStats
from repro.common.errors import CatalogError
from repro.sql.parser import parse, parse_expression
from repro.storage.schema import Column, DataType, Schema


def schema():
    return Schema(
        [
            Column("id", DataType.INT, nullable=False),
            Column("name", DataType.STRING),
            Column("v", DataType.FLOAT),
        ]
    )


class TestTypeMapping:
    def test_aliases(self):
        assert data_type_from_sql("INT") is DataType.INT
        assert data_type_from_sql("integer") is DataType.INT
        assert data_type_from_sql("varchar") is DataType.STRING
        assert data_type_from_sql("REAL") is DataType.FLOAT
        assert data_type_from_sql("boolean") is DataType.BOOL
        assert data_type_from_sql("timestamp") is DataType.TIMESTAMP

    def test_unknown_type(self):
        with pytest.raises(CatalogError):
            data_type_from_sql("blob")


class TestCatalogTables:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("T", schema(), primary_key=["id"])
        assert catalog.has_table("t")
        assert catalog.table("T").name == "t"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        with pytest.raises(CatalogError):
            catalog.create_table("T", schema())

    def test_from_ast(self):
        catalog = Catalog()
        stmt = parse("CREATE TABLE x (a INT NOT NULL, b VARCHAR(5), PRIMARY KEY (a))")
        entry = catalog.create_table_from_ast(stmt)
        assert entry.schema.names() == ["a", "b"]
        assert entry.table.primary_key == ["a"]

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_drop_missing(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("t")

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_refresh_stats(self):
        catalog = Catalog()
        entry = catalog.create_table("t", schema(), primary_key=["id"])
        entry.table.insert((1, "a", 2.0))
        entry.table.insert((2, "b", 4.0))
        stats = entry.refresh_stats()
        assert stats.row_count == 2
        assert stats.column("v").min == 2.0


class TestCatalogViews:
    def make(self):
        catalog = Catalog()
        catalog.create_table("base", schema(), primary_key=["id"])
        catalog.create_region("r1", 10.0, 2.0)
        return catalog

    def test_create_matview(self):
        catalog = self.make()
        view = catalog.create_matview("v", "base", ["id", "v"], region="r1")
        assert view.schema.names() == ["id", "v"]
        assert view.table.primary_key == ["id"]
        assert catalog.region("r1").view_names == ["v"]

    def test_view_without_pk_columns_has_no_pk(self):
        catalog = self.make()
        view = catalog.create_matview("v", "base", ["name", "v"], region="r1")
        assert view.table.primary_key is None

    def test_matviews_on(self):
        catalog = self.make()
        catalog.create_matview("v1", "base", ["id"], region="r1")
        catalog.create_matview("v2", "base", ["id", "v"], region="r1")
        assert {v.name for v in catalog.matviews_on("base")} == {"v1", "v2"}

    def test_name_collision_with_table(self):
        catalog = self.make()
        with pytest.raises(CatalogError):
            catalog.create_matview("base", "base", ["id"], region="r1")

    def test_definition_sql(self):
        catalog = self.make()
        pred = parse_expression("v > 5")
        view = catalog.create_matview("v1", "base", ["id", "v"], predicate=pred, region="r1")
        assert view.definition_sql() == "SELECT id, v FROM base WHERE (v > 5)"

    def test_resolve(self):
        catalog = self.make()
        catalog.create_matview("v1", "base", ["id"], region="r1")
        assert catalog.resolve("base").name == "base"
        assert catalog.resolve("v1").name == "v1"
        with pytest.raises(CatalogError):
            catalog.resolve("zzz")


class TestRegions:
    def test_create_and_lookup(self):
        catalog = Catalog()
        region = catalog.create_region("cr1", 15, 5)
        assert region.update_interval == 15.0
        assert catalog.region("cr1") is region

    def test_duplicate_region(self):
        catalog = Catalog()
        catalog.create_region("cr1", 15, 5)
        with pytest.raises(CatalogError):
            catalog.create_region("cr1", 10, 5)

    def test_unknown_region(self):
        with pytest.raises(CatalogError):
            Catalog().region("zzz")


class TestColumnStats:
    def test_from_values(self):
        stats = ColumnStats.from_values([3, 1, 2, 2, None])
        assert stats.min == 1
        assert stats.max == 3
        assert stats.ndv == 3
        assert stats.null_count == 1

    def test_from_empty(self):
        stats = ColumnStats.from_values([])
        assert stats.min is None
        assert stats.ndv == 0

    def test_string_width(self):
        stats = ColumnStats.from_values(["ab", "abcd"])
        assert stats.avg_width == 3.0

    def test_eq_selectivity(self):
        assert ColumnStats(ndv=100).eq_selectivity() == 0.01
        assert ColumnStats().eq_selectivity() == 0.01  # default

    def test_range_selectivity_interpolates(self):
        stats = ColumnStats(min=0.0, max=100.0, ndv=100)
        assert stats.range_selectivity(low=0, high=50) == pytest.approx(0.5)
        assert stats.range_selectivity(low=25, high=75) == pytest.approx(0.5)

    def test_range_selectivity_clamps(self):
        stats = ColumnStats(min=0.0, max=100.0)
        assert stats.range_selectivity(low=-50, high=200) == 1.0
        assert stats.range_selectivity(low=150, high=200) == 0.0

    def test_range_selectivity_open_ended(self):
        stats = ColumnStats(min=0.0, max=100.0)
        assert stats.range_selectivity(low=90) == pytest.approx(0.1)
        assert stats.range_selectivity(high=10) == pytest.approx(0.1)

    def test_range_selectivity_non_numeric_defaults(self):
        stats = ColumnStats(min="a", max="z")
        assert stats.range_selectivity(low="b") == 0.33

    def test_single_valued_column(self):
        stats = ColumnStats(min=5.0, max=5.0)
        assert stats.range_selectivity(low=0, high=10) == 1.0
        assert stats.range_selectivity(low=6, high=10) == 0.0


class TestTableStats:
    def test_project(self):
        stats = TableStats(row_count=10, columns={"a": ColumnStats(ndv=5), "b": ColumnStats()})
        projected = stats.project(["a"])
        assert projected.row_count == 10
        assert set(projected.columns) == {"a"}

    def test_scaled(self):
        stats = TableStats(row_count=100)
        assert stats.scaled(0.25).row_count == 25
        assert stats.scaled(0.0001).row_count == 1  # never zero when nonempty

    def test_row_width_default(self):
        assert TableStats().row_width == 32

    def test_row_width_from_columns(self):
        stats = TableStats(columns={"a": ColumnStats(avg_width=8), "b": ColumnStats(avg_width=12)})
        assert stats.row_width == 20

    def test_unknown_column_returns_empty(self):
        stats = TableStats()
        assert stats.column("zzz").ndv == 0
