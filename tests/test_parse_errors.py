"""Parser diagnostics: malformed SQL must fail with a located ParseError,
never a Python-level exception."""

import pytest

from repro.common.errors import ParseError
from repro.sql.parser import parse, parse_expression

BAD_STATEMENTS = [
    "",
    "SELEC a FROM t",
    "SELECT FROM t",
    "SELECT a",
    "SELECT a FROM",
    "SELECT a FROM t WHERE",
    "SELECT a FROM t GROUP a",
    "SELECT a FROM t ORDER a",
    "SELECT a FROM (SELECT a FROM t)",  # derived table needs an alias
    "SELECT a FROM t JOIN u",  # missing ON
    "SELECT a FROM t CURRENCY 5 ON (t)",  # missing BOUND
    "SELECT a FROM t CURRENCY BOUND ON (t)",  # missing duration
    "SELECT a FROM t CURRENCY BOUND 5 SEC ON t",  # missing parens
    "SELECT a FROM t CURRENCY BOUND 5 SEC ON ()",
    "SELECT a FROM t CURRENCY BOUND 5 SEC ON (t) BY",
    "INSERT t VALUES (1)",
    "INSERT INTO t (a VALUES (1)",
    "INSERT INTO t VALUES",
    "UPDATE t SET WHERE a = 1",
    "UPDATE t a = 1",
    "DELETE t WHERE a = 1",
    "CREATE TABLE t (a)",  # missing type
    "CREATE TABLE t a INT",
    "CREATE INDEX ix ON t",
    "BEGIN",
    "END",
    "EXPLAIN",
    "EXPLAIN INSERT INTO t VALUES (1)",
    "SELECT a FROM t; SELECT b FROM t",  # one statement at a time
    "SELECT a FROM t WHERE a = = 1",
    "SELECT a FROM t WHERE a NOT 1",
    "SELECT a FROM t LIMIT many",
]


@pytest.mark.parametrize("sql", BAD_STATEMENTS)
def test_bad_statement_raises_parse_error(sql):
    with pytest.raises(ParseError):
        parse(sql)


BAD_EXPRESSIONS = [
    "",
    "1 +",
    "(1 + 2",
    "a BETWEEN 1",
    "a IN",
    "a IN ()",
    "a IS",
    "NOT",
    "func(1,)",
    "a . ",
]


@pytest.mark.parametrize("text", BAD_EXPRESSIONS)
def test_bad_expression_raises_parse_error(text):
    with pytest.raises(ParseError):
        parse_expression(text)


class TestErrorQuality:
    def test_position_reported(self):
        with pytest.raises(ParseError) as info:
            parse("SELECT a FROM t WHERE @")
        assert "position" in str(info.value)

    def test_offending_token_quoted(self):
        with pytest.raises(ParseError) as info:
            parse("SELECT a FROM t GROUP x")
        assert "'x'" in str(info.value)

    def test_expectation_named(self):
        with pytest.raises(ParseError) as info:
            parse("SELECT a FROM t CURRENCY 5 ON (t)")
        assert "BOUND" in str(info.value)
