"""Tests for scheduled statistics refresh and pre-settle guard behavior."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.workloads.tpcd import generate_orders


def make_env():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 1)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r", 10, 2, heartbeat_interval=1)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r")
    return backend, cache


class TestAutoStats:
    def test_backend_stats_refresh_on_schedule(self):
        backend, cache = make_env()
        backend.schedule_statistics_refresh(5.0)
        values = ", ".join(f"({i}, {i})" for i in range(2, 50))
        backend.execute(f"INSERT INTO t VALUES {values}")
        assert backend.catalog.table("t").stats.row_count == 1  # stale stats
        backend.run_for(5.0)
        assert backend.catalog.table("t").stats.row_count == 49

    def test_attached_cache_shadow_follows(self):
        backend, cache = make_env()
        backend.schedule_statistics_refresh(5.0, caches=[cache])
        values = ", ".join(f"({i}, {i})" for i in range(2, 50))
        backend.execute(f"INSERT INTO t VALUES {values}")
        backend.run_for(5.0)
        assert cache.catalog.table("t").stats.row_count == 49

    def test_refresh_invalidates_plan_cache(self):
        backend, cache = make_env()
        cache.run_for(11.0)
        backend.schedule_statistics_refresh(5.0, caches=[cache])
        sql = "SELECT x.id FROM t x CURRENCY BOUND 60 SEC ON (x)"
        first = cache.optimize(sql)
        backend.run_for(5.0)
        assert cache.optimize(sql) is not first

    def test_cancelable(self):
        backend, cache = make_env()
        event = backend.schedule_statistics_refresh(5.0)
        backend.execute("INSERT INTO t VALUES (2, 2)")
        event.cancel()
        backend.run_for(20.0)
        assert backend.catalog.table("t").stats.row_count == 1


class TestPreSettleGuards:
    def test_fresh_subscription_is_immediately_usable(self):
        # Subscribing resyncs the region to "now", including the heartbeat
        # row, so a brand-new view can serve guarded queries right away.
        _, cache = make_env()
        result = cache.execute("SELECT x.id FROM t x CURRENCY BOUND 600 SEC ON (x)")
        assert result.context.branches == [("t_copy", 0)]

    def test_missing_heartbeat_fails_closed(self):
        # If the replicated heartbeat row is somehow absent, the guard has
        # no staleness guarantee and must choose the remote branch.
        _, cache = make_env()
        cache._local_heartbeats["r"].truncate()
        result = cache.execute("SELECT x.id FROM t x CURRENCY BOUND 600 SEC ON (x)")
        assert result.context.branches == [("t_copy", 1)]

    def test_unbounded_query_may_use_unsettled_view(self):
        _, cache = make_env()
        result = cache.execute(
            "SELECT x.id FROM t x CURRENCY BOUND UNBOUNDED ON (x)"
        )
        assert result.context.remote_queries == []


class TestSkewedOrders:
    def test_zero_skew_roughly_uniform(self):
        orders = list(generate_orders(0.001, skew=0.0))
        counts = {}
        for custkey, *_ in orders:
            counts[custkey] = counts.get(custkey, 0) + 1
        assert max(counts.values()) <= 13

    def test_skew_creates_heavy_hitters(self):
        orders = list(generate_orders(0.001, skew=0.9))
        counts = {}
        for custkey, *_ in orders:
            counts[custkey] = counts.get(custkey, 0) + 1
        # Low-key customers get far more orders than the tail.
        head = counts.get(1, 0) + counts.get(2, 0)
        tail = counts.get(max(counts), 0) + counts.get(max(counts) - 1, 0)
        assert head > 3 * max(tail, 1)

    def test_orderkeys_still_unique(self):
        orders = list(generate_orders(0.001, skew=0.7))
        keys = [(o[0], o[1]) for o in orders]
        assert len(keys) == len(set(keys))

    def test_deterministic(self):
        a = list(generate_orders(0.001, skew=0.5, seed=3))
        b = list(generate_orders(0.001, skew=0.5, seed=3))
        assert a == b
