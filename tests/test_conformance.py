"""Tests for the conformance harness — and, through it, long random
schedules over the full stack."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.semantics.conformance import ConformanceHarness


def make_cache(two_regions=False):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE acct (aid INT NOT NULL, bal INT NOT NULL, tier INT NOT NULL, "
        "PRIMARY KEY (aid))"
    )
    rows = ", ".join(f"({i}, {i * 100}, {i % 3})" for i in range(1, 26))
    backend.execute(f"INSERT INTO acct VALUES {rows}")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", 6.0, 1.5, heartbeat_interval=0.5)
    cache.create_matview("acct_a", "acct", ["aid", "bal", "tier"], region="r1")
    if two_regions:
        cache.create_region("r2", 11.0, 2.0, heartbeat_interval=1.0)
        cache.create_matview("acct_b", "acct", ["aid", "bal", "tier"], region="r2")
    cache.run_for(12.0)
    return cache


class TestHarness:
    def test_long_schedule_no_violations(self):
        cache = make_cache()
        harness = ConformanceHarness(cache, tables=["acct"], seed=101)
        outcome = harness.run(steps=200)
        assert outcome.ok, outcome.failures
        assert outcome.queries > 30
        assert outcome.updates > 20

    def test_two_region_schedule(self):
        cache = make_cache(two_regions=True)
        harness = ConformanceHarness(cache, tables=["acct"], seed=202)
        outcome = harness.run(steps=150)
        assert outcome.ok, outcome.failures

    def test_mixed_bounds_exercise_both_branches(self):
        cache = make_cache()
        harness = ConformanceHarness(cache, tables=["acct"], seed=303)
        outcome = harness.run(steps=200)
        assert 0 < outcome.local_queries < outcome.queries

    def test_deterministic_per_seed(self):
        a = ConformanceHarness(make_cache(), tables=["acct"], seed=7).run(steps=60)
        b = ConformanceHarness(make_cache(), tables=["acct"], seed=7).run(steps=60)
        assert (a.queries, a.updates, a.local_queries) == (
            b.queries,
            b.updates,
            b.local_queries,
        )

    def test_detects_injected_corruption(self):
        # Sanity that the harness is not vacuous: corrupt the view and the
        # next deep checks must flag it.
        cache = make_cache()
        view = cache.catalog.matview("acct_a")
        rid = view.table.pk_lookup((1,))
        view.table.update(rid, (1, -999_999, 0))
        harness = ConformanceHarness(
            cache, tables=["acct"], seed=404, bounds=[10_000]
        )
        outcome = harness.run(steps=40)
        assert not outcome.ok

    def test_outcome_repr(self):
        cache = make_cache()
        outcome = ConformanceHarness(cache, tables=["acct"], seed=1).run(steps=10)
        assert "ConformanceOutcome" in repr(outcome)
