"""Tests for the guard fallback policies (paper §1: when requirements are
not met the system may route, return an error, or return data flagged)."""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.common.errors import CurrencyError


def make_env(policy):
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE t (id INT NOT NULL, v INT NOT NULL, PRIMARY KEY (id))"
    )
    backend.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    backend.refresh_statistics()
    cache = MTCache(backend, fallback_policy=policy)
    cache.create_region("r1", 10.0, 2.0, heartbeat_interval=1.0)
    cache.create_matview("t_copy", "t", ["id", "v"], region="r1")
    cache.run_for(11.0)
    return backend, cache


TIGHT = "SELECT x.id, x.v FROM t x CURRENCY BOUND 3 SEC ON (x)"
LOOSE = "SELECT x.id, x.v FROM t x CURRENCY BOUND 600 SEC ON (x)"


def go_stale(cache):
    cache.run_for(4.0)  # mid-cycle: heartbeat bound > 3s


class TestUnknownPolicy:
    def test_rejected_at_construction(self):
        backend = BackendServer()
        with pytest.raises(ValueError):
            MTCache(backend, fallback_policy="shrug")

    def test_message_names_the_accepted_policies(self):
        backend = BackendServer()
        with pytest.raises(
            ValueError,
            match=r"unknown fallback policy: 'shrug' "
                  r"\(expected one of: remote, error, serve_stale\)",
        ):
            MTCache(backend, fallback_policy="shrug")

    def test_setter_reports_the_same_message(self):
        _, cache = make_env("remote")
        with pytest.raises(ValueError, match=r"expected one of: remote"):
            cache.fallback_policy = "bogus"
        assert cache.fallback_policy == "remote"  # knob unchanged

    def test_case_insensitive_and_enum_accepted(self):
        from repro.cache.mtcache import FallbackPolicy

        backend = BackendServer()
        assert MTCache(backend, fallback_policy="REMOTE").fallback_policy == "remote"
        assert (
            MTCache(backend, fallback_policy=FallbackPolicy.ERROR).fallback_policy
            == "error"
        )


class TestRemotePolicy:
    def test_default_routes_to_backend(self):
        _, cache = make_env("remote")
        go_stale(cache)
        result = cache.execute(TIGHT)
        assert result.context.branches == [("t_copy", 1)]
        assert result.warnings == []


class TestErrorPolicy:
    def test_raises_when_stale(self):
        _, cache = make_env("error")
        go_stale(cache)
        with pytest.raises(CurrencyError):
            cache.execute(TIGHT)

    def test_passes_when_fresh(self):
        _, cache = make_env("error")
        result = cache.execute(LOOSE)
        assert result.context.branches == [("t_copy", 0)]

    def test_error_mentions_view_and_bound(self):
        _, cache = make_env("error")
        go_stale(cache)
        with pytest.raises(CurrencyError, match="t_copy.*3"):
            cache.execute(TIGHT)

    def test_timeline_violation_also_errors(self):
        _, cache = make_env("error")
        cache.execute("BEGIN TIMEORDERED")
        cache.execute("SELECT x.id FROM t x")  # remote -> watermark = now
        with pytest.raises(CurrencyError, match="timeline"):
            cache.execute(LOOSE)
        cache.execute("END TIMEORDERED")


class TestServeStalePolicy:
    def test_serves_local_with_warning(self):
        backend, cache = make_env("serve_stale")
        backend.execute("INSERT INTO t VALUES (3, 30)")
        go_stale(cache)
        result = cache.execute(TIGHT)
        assert result.context.branches == [("t_copy", 0)]
        assert len(result.rows) == 2  # stale: new row not visible
        assert len(result.warnings) == 1
        assert "t_copy" in result.warnings[0]

    def test_no_warning_when_fresh(self):
        _, cache = make_env("serve_stale")
        result = cache.execute(LOOSE)
        assert result.warnings == []

    def test_warning_carries_staleness(self):
        _, cache = make_env("serve_stale")
        go_stale(cache)
        result = cache.execute(TIGHT)
        assert "exceeds 3" in result.warnings[0]
