"""Tests for expression compilation, including SQL NULL semantics."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ExecutionError
from repro.engine.expressions import (
    ExpressionContext,
    OutputCol,
    RowBinding,
    evaluator,
    make_env,
)
from repro.sql.parser import parse_expression


def run(sql, row=(), columns=(), clock=None):
    binding = RowBinding([OutputCol(name, qualifier) for qualifier, name in columns])
    ctx = ExpressionContext(clock=clock)
    return evaluator(parse_expression(sql), binding, ctx)(row)


class TestLiteralsAndColumns:
    def test_integer_literal(self):
        assert run("42") == 42

    def test_string_literal(self):
        assert run("'abc'") == "abc"

    def test_null_literal(self):
        assert run("NULL") is None

    def test_booleans(self):
        assert run("TRUE") is True
        assert run("FALSE") is False

    def test_column_by_name(self):
        assert run("a", row=(7,), columns=[("t", "a")]) == 7

    def test_column_qualified(self):
        columns = [("t", "a"), ("u", "a")]
        assert run("t.a", row=(1, 2), columns=columns) == 1
        assert run("u.a", row=(1, 2), columns=columns) == 2

    def test_ambiguous_column_raises(self):
        with pytest.raises(ExecutionError):
            run("a", row=(1, 2), columns=[("t", "a"), ("u", "a")])

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            run("zz", row=(1,), columns=[("t", "a")])


class TestArithmetic:
    def test_add_mul(self):
        assert run("1 + 2 * 3") == 7

    def test_division_float(self):
        assert run("7 / 2") == 3.5

    def test_modulo(self):
        assert run("7 % 3") == 1

    def test_unary_minus(self):
        assert run("-a", row=(5,), columns=[("t", "a")]) == -5

    def test_null_propagates(self):
        assert run("a + 1", row=(None,), columns=[("t", "a")]) is None


class TestComparisons:
    def test_basic(self):
        assert run("3 < 5") is True
        assert run("3 > 5") is False
        assert run("3 = 3") is True
        assert run("3 <> 3") is False
        assert run("3 <= 3") is True
        assert run("3 >= 4") is False

    def test_null_comparison_is_null(self):
        assert run("a = 1", row=(None,), columns=[("t", "a")]) is None

    def test_between(self):
        assert run("a BETWEEN 2 AND 4", row=(3,), columns=[("t", "a")]) is True
        assert run("a BETWEEN 2 AND 4", row=(5,), columns=[("t", "a")]) is False

    def test_not_between(self):
        assert run("a NOT BETWEEN 2 AND 4", row=(5,), columns=[("t", "a")]) is True

    def test_between_null(self):
        assert run("a BETWEEN 2 AND 4", row=(None,), columns=[("t", "a")]) is None

    def test_in_list(self):
        assert run("a IN (1, 2, 3)", row=(2,), columns=[("t", "a")]) is True
        assert run("a IN (1, 2, 3)", row=(9,), columns=[("t", "a")]) is False

    def test_not_in_list(self):
        assert run("a NOT IN (1, 2)", row=(9,), columns=[("t", "a")]) is True

    def test_is_null(self):
        assert run("a IS NULL", row=(None,), columns=[("t", "a")]) is True
        assert run("a IS NULL", row=(1,), columns=[("t", "a")]) is False
        assert run("a IS NOT NULL", row=(1,), columns=[("t", "a")]) is True


class TestBooleanLogic:
    def test_and_or(self):
        assert run("1 = 1 AND 2 = 2") is True
        assert run("1 = 1 AND 2 = 3") is False
        assert run("1 = 2 OR 2 = 2") is True

    def test_three_valued_and(self):
        # NULL AND FALSE = FALSE; NULL AND TRUE = NULL
        assert run("a = 1 AND 1 = 2", row=(None,), columns=[("t", "a")]) is False
        assert run("a = 1 AND 1 = 1", row=(None,), columns=[("t", "a")]) is None

    def test_three_valued_or(self):
        # NULL OR TRUE = TRUE; NULL OR FALSE = NULL
        assert run("a = 1 OR 1 = 1", row=(None,), columns=[("t", "a")]) is True
        assert run("a = 1 OR 1 = 2", row=(None,), columns=[("t", "a")]) is None

    def test_not_null_is_null(self):
        assert run("NOT a = 1", row=(None,), columns=[("t", "a")]) is None


class TestFunctions:
    def test_getdate_uses_clock(self):
        clock = SimulatedClock(start=123.0)
        assert run("GETDATE()", clock=clock) == 123.0

    def test_getdate_without_clock_raises(self):
        with pytest.raises(ExecutionError):
            run("GETDATE()")

    def test_aggregate_outside_aggregation_raises(self):
        with pytest.raises(ExecutionError):
            run("COUNT(*)")

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            run("frobnicate(1)")


class TestCorrelatedResolution:
    def test_outer_binding_fallback(self):
        outer = RowBinding([OutputCol("x", "o")])
        inner = RowBinding([OutputCol("y", "i")], outer=outer)
        fn = evaluator(parse_expression("o.x + i.y"), inner)
        # evaluator builds an env without outer; construct manually instead
        from repro.engine.expressions import compile_expr

        fn = compile_expr(parse_expression("o.x + i.y"), inner)
        outer_env = make_env((10,))
        env = make_env((5,), outer_env)
        assert fn(env) == 15

    def test_subquery_without_runner_raises(self):
        binding = RowBinding([OutputCol("a", "t")])
        with pytest.raises(ExecutionError):
            evaluator(parse_expression("EXISTS (SELECT 1 FROM s)"), binding)
