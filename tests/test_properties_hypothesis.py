"""Hypothesis properties for the §3.2.2 consistency rules.

These pin down the logical relationships the optimizer relies on:
violation is sound (a violating partial plan can never complete into a
satisfying one), satisfaction implies non-violation, and SwitchUnion
properties are coarsening-monotone.
"""

from hypothesis import given, settings, strategies as st

from repro.cc.constraint import CCConstraint, CCTuple
from repro.cc.properties import (
    BACKEND_REGION,
    ConsistencyProperty,
    is_conflicting,
    satisfies,
    violates,
)

OPERANDS = ["a", "b", "c", "d"]
REGIONS = ["r1", "r2", BACKEND_REGION]


@st.composite
def delivered_properties(draw):
    """A delivered property assigning each of a random operand subset to a
    region; occasionally duplicates an operand across regions (conflict)."""
    operands = draw(st.lists(st.sampled_from(OPERANDS), min_size=1, max_size=4, unique=True))
    groups = {}
    for op in operands:
        region = draw(st.sampled_from(REGIONS))
        groups.setdefault(region, set()).add(op)
    if draw(st.booleans()) and len(groups) > 1:
        # Inject a potential conflict: copy one operand into another group.
        regions = sorted(groups, key=str)
        src, dst = regions[0], regions[-1]
        if groups[src]:
            groups[dst].add(next(iter(groups[src])))
    return ConsistencyProperty(sorted(groups.items(), key=lambda g: str(g[0])))


@st.composite
def required_constraints(draw):
    pool = list(OPERANDS)
    draw(st.randoms()).shuffle(pool)
    tuples = []
    while pool and len(tuples) < 3:
        size = draw(st.integers(min_value=1, max_value=len(pool)))
        operands, pool = pool[:size], pool[size:]
        bound = draw(st.sampled_from([0.0, 5.0, 600.0]))
        tuples.append(CCTuple(bound, operands))
    return CCConstraint(tuples)


class TestRuleCoherence:
    @settings(max_examples=200)
    @given(delivered_properties(), required_constraints())
    def test_violation_implies_not_satisfied(self, delivered, required):
        if violates(delivered, required):
            assert not satisfies(delivered, required)

    @settings(max_examples=200)
    @given(delivered_properties(), required_constraints())
    def test_satisfaction_implies_not_violating(self, delivered, required):
        if satisfies(delivered, required):
            assert not violates(delivered, required)

    @settings(max_examples=200)
    @given(delivered_properties())
    def test_conflict_blocks_everything(self, delivered):
        if is_conflicting(delivered):
            assert not satisfies(delivered, CCConstraint([]))
            assert violates(delivered, CCConstraint([]))

    @settings(max_examples=200)
    @given(delivered_properties(), required_constraints())
    def test_violation_is_stable_under_joins(self, delivered, required):
        """Soundness of early pruning: joining more data onto a violating
        plan can never un-violate it (joins only merge equal-region
        groups, never split or relabel)."""
        if not violates(delivered, required):
            return
        extra = ConsistencyProperty.single("r9", ["zzz"])
        assert violates(delivered.join(extra), required)

    @settings(max_examples=200)
    @given(delivered_properties())
    def test_join_preserves_operands(self, delivered):
        other = ConsistencyProperty.single("rX", ["extra"])
        joined = delivered.join(other)
        assert joined.operands == delivered.operands | {"extra"}


class TestSwitchUnionProperties:
    @settings(max_examples=150)
    @given(delivered_properties())
    def test_identical_children_preserve_grouping(self, delivered):
        if is_conflicting(delivered):
            return
        result = ConsistencyProperty.switch_union([delivered, delivered])
        # Same partition of operands, relabelled regions.
        original = {frozenset(ops) for _, ops in delivered.groups if ops}
        merged = {frozenset(ops) for _, ops in result.groups}
        # Groups may only split if an operand sat in two groups (conflict,
        # excluded above); otherwise partitions coincide.
        for group in merged:
            assert any(group <= orig for orig in original)

    @settings(max_examples=150)
    @given(delivered_properties(), delivered_properties())
    def test_switch_union_only_coarsens_never_invents(self, a, b):
        if a.operands != b.operands:
            return
        result = ConsistencyProperty.switch_union([a, b])
        assert result.operands == a.operands
        # Any pair grouped in the result must be grouped in both children.
        for _, ops in result.groups:
            ops = sorted(ops)
            for i, x in enumerate(ops):
                for y in ops[i + 1 :]:
                    for child in (a, b):
                        assert child.region_of(x) == child.region_of(y)
