"""Tests for the hash-partitioned back-end and partition-scoped C&C.

Covers the :class:`~repro.common.backend.Backend` protocol boundary,
cross-shard equivalence against a single server under an identical
transaction history, the per-shard currency rule (a result is only as
current as its stalest contributing shard; pinned plans only answer to
their own shard), the scatter-gather fleet router, and a seeded chaos
run with one shard dark.
"""

import pytest

from repro.cache.backend import BackendServer
from repro.cache.mtcache import MTCache
from repro.chaos import ChaosScheduler
from repro.chaos.env import build_demo_fleet
from repro.common.backend import Backend, stable_shard_hash
from repro.common.errors import ExecutionError
from repro.fleet import CacheFleet, FleetConfig
from repro.shard import ShardedBackend
from repro.sql.parser import parse

DDL = (
    "CREATE TABLE inv (id INT NOT NULL, qty INT NOT NULL, "
    "zone STRING, PRIMARY KEY (id))"
)


def load_history(backend, n=60):
    """One fixed DDL + DML history, replayable on any backend."""
    backend.create_table(DDL)
    values = ", ".join(
        f"({i}, {i * 3 % 17}, 'r{i % 4}')" for i in range(n)
    )
    backend.execute(f"INSERT INTO inv VALUES {values}")
    backend.execute("UPDATE inv SET qty = qty + 100 WHERE id < 10")
    backend.execute("DELETE FROM inv WHERE id >= 55")
    backend.execute("INSERT INTO inv VALUES (200, 7, 'r0'), (201, 8, 'r1')")
    backend.refresh_statistics()
    return backend


QUERIES = [
    "SELECT i.id, i.qty FROM inv i WHERE i.id = 7",
    "SELECT i.id, i.qty FROM inv i WHERE i.id IN (1, 2, 30, 200)",
    "SELECT i.id FROM inv i WHERE i.qty > 8",
    "SELECT i.zone, COUNT(*), SUM(i.qty) FROM inv i GROUP BY i.zone",
    "SELECT i.id FROM inv i ORDER BY i.qty DESC, i.id LIMIT 5",
    "SELECT DISTINCT i.zone FROM inv i",
    "SELECT COUNT(*) FROM inv i",
    "SELECT a.id, b.id FROM inv a, inv b "
    "WHERE a.qty = b.qty AND a.id < b.id ORDER BY a.id, b.id LIMIT 10",
]


class TestStableHash:
    def test_deterministic_and_typed(self):
        assert stable_shard_hash(42) == stable_shard_hash(42)
        assert stable_shard_hash("abc") == stable_shard_hash("abc")
        assert stable_shard_hash(True) == stable_shard_hash(1)
        # Sequential integer keys must not all land on one shard.
        shards = {stable_shard_hash(i) % 4 for i in range(16)}
        assert len(shards) > 1


class TestBackendProtocol:
    def test_concrete_backends_implement_protocol(self):
        for backend in (BackendServer(), ShardedBackend(2)):
            assert isinstance(backend, Backend)
            assert MTCache(backend).backend is backend

    def test_config_rejects_non_protocol_backend(self):
        class Legacy:
            """Pre-protocol duck type: no longer shimmed."""

        with pytest.raises(TypeError, match="Backend"):
            FleetConfig(backend=Legacy()).resolve_backend()

    def test_replication_sources_shape(self):
        single = load_history(BackendServer())
        assert [s.shard_id for s in single.replication_sources()] == [None]
        sharded = load_history(ShardedBackend(3))
        assert [s.shard_id for s in sharded.replication_sources()] == [0, 1, 2]
        assert len({id(s.log) for s in sharded.replication_sources()}) == 3


class TestShardRouting:
    def setup_method(self):
        self.backend = load_history(ShardedBackend(4))

    def route(self, sql):
        return self.backend.route_select(parse(sql))

    def test_point_lookup_is_single_shard(self):
        route = self.route("SELECT i.id FROM inv i WHERE i.id = 7")
        assert route.mode == "single"
        assert route.shards == (self.backend.shard_of("inv", 7),)

    def test_multi_shard_in_scatters(self):
        keys = [1, 2, 30, 200]
        route = self.route(
            "SELECT i.id FROM inv i WHERE i.id IN (1, 2, 30, 200)"
        )
        expected = {self.backend.shard_of("inv", k) for k in keys}
        assert set(route.shards) == expected
        assert route.mode in ("scatter", "single")

    def test_aggregate_needs_final_pass(self):
        route = self.route("SELECT COUNT(*) FROM inv i")
        assert route.mode == "fetch"
        assert set(route.shards) == set(range(4))

    def test_join_gathers(self):
        route = self.route(
            "SELECT a.id FROM inv a, inv b WHERE a.qty = b.qty"
        )
        assert route.mode == "gather"

    def test_explain_mentions_route(self):
        plan = self.backend.explain("SELECT i.id FROM inv i WHERE i.id = 7")
        text = "\n".join(row[0] for row in plan.rows)
        assert "shard route: single" in text

    def test_partition_key_update_rejected(self):
        with pytest.raises(ExecutionError):
            self.backend.execute("UPDATE inv SET id = 999 WHERE id = 7")

    def test_execute_remote_honours_pin(self):
        shard = self.backend.shard_of("inv", 7)
        rows = self.backend.execute_remote(
            "SELECT i.id, i.qty FROM inv i WHERE i.id = 7", shards=(shard,)
        )
        assert [r[0] for r in rows] == [7]
        other = tuple(s for s in range(4) if s != shard)
        assert self.backend.execute_remote(
            "SELECT i.id FROM inv i WHERE i.id = 7", shards=other
        ) == []


class TestCrossShardEquivalence:
    """M ∈ {1, 2, 4} partitions answer exactly like one server."""

    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_queries_match_single_server(self, m):
        reference = load_history(BackendServer())
        sharded = load_history(ShardedBackend(m))
        for sql in QUERIES:
            want = sorted(reference.execute(sql).rows)
            got = sorted(sharded.execute(sql).rows)
            assert got == want, sql

    @pytest.mark.parametrize("m", [2, 4])
    def test_dml_counts_match(self, m):
        reference = load_history(BackendServer())
        sharded = load_history(ShardedBackend(m))
        for sql in (
            "UPDATE inv SET qty = 0 WHERE zone = 'r2'",
            "DELETE FROM inv WHERE qty > 90",
        ):
            assert sharded.execute(sql) == reference.execute(sql)
        for sql in QUERIES:
            assert sorted(sharded.execute(sql).rows) == sorted(
                reference.execute(sql).rows
            ), sql

    def test_rows_spread_over_shards(self):
        sharded = load_history(ShardedBackend(4))
        per_shard = [
            len(p.catalog.table("inv").table) for p in sharded.partitions
        ]
        assert sum(per_shard) == 57
        assert all(n > 0 for n in per_shard)

    def test_bulk_load_routes_like_insert(self):
        a = ShardedBackend(4)
        a.create_table(DDL)
        a.bulk_load("inv", [(i, i, "x") for i in range(40)])
        b = ShardedBackend(4)
        b.create_table(DDL)
        values = ", ".join(f"({i}, {i}, 'x')" for i in range(40))
        b.execute(f"INSERT INTO inv VALUES {values}")
        for pa, pb in zip(a.partitions, b.partitions):
            assert sorted(
                v for _, v in pa.catalog.table("inv").table.scan()
            ) == sorted(v for _, v in pb.catalog.table("inv").table.scan())


class TestPartitionScopedCurrency:
    """The per-shard C&C rule on a cache over a sharded back-end."""

    def make(self, m=2):
        backend = load_history(ShardedBackend(m))
        cache = MTCache(backend)
        cache.create_region("r", 2.0, 0.5, heartbeat_interval=0.5)
        cache.create_matview("inv_c", "inv", ["id", "qty"], region="r")
        cache.run_for(5.0)
        return backend, cache

    def test_one_agent_per_partition(self):
        _, cache = self.make(2)
        assert sorted(cache.agents) == ["r#p0", "r#p1"]
        assert [s for s, _ in cache._region_agent_keys["r"]] == [0, 1]

    def test_view_snapshot_is_min_over_shards(self):
        _, cache = self.make(2)
        view = cache.catalog.matview("inv_c")
        assert set(view.shard_snapshots) == {0, 1}
        assert view.snapshot_time == min(view.shard_snapshots.values())

    def test_view_gathers_every_partition(self):
        backend, cache = self.make(2)
        view = cache.catalog.matview("inv_c")
        assert len(view.table) == sum(
            len(p.catalog.table("inv").table) for p in backend.partitions
        )

    def test_stalled_shard_only_blocks_its_own_keys(self):
        backend, cache = self.make(2)
        # Keys living on each shard.
        key0 = next(
            i for i in range(60) if backend.shard_of("inv", i) == 0
        )
        key1 = next(
            i for i in range(60) if backend.shard_of("inv", i) == 1
        )
        cache.agents["r#p0"].stop()
        cache.run_for(10.0)  # shard 0's replica now ~10 s stale
        sql = (
            "SELECT i.id, i.qty FROM inv i WHERE i.id = {k} "
            "CURRENCY BOUND 3 SEC ON (i)"
        )
        stalled = cache.execute(sql.format(k=key0))
        healthy = cache.execute(sql.format(k=key1))
        # Pinned to the stalled shard: guard must reject the local copy.
        assert stalled.context.branches[0][1] == 1
        # Pinned to the healthy shard: its own agent is fresh, stays local.
        assert healthy.context.branches[0][1] == 0
        assert stalled.rows and healthy.rows

    def test_update_reaches_view_through_owning_partition(self):
        backend, cache = self.make(2)
        backend.execute("UPDATE inv SET qty = 777 WHERE id = 7")
        cache.run_for(5.0)
        result = cache.execute(
            "SELECT i.qty FROM inv i WHERE i.id = 7 "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        assert result.context.branches[0][1] == 0
        assert result.rows == [(777,)]

    def test_status_reports_shard_snapshot_ages(self):
        _, cache = self.make(2)
        views = cache.status()["r"]["views"]
        ages = views["inv_c"]["shard_snapshot_ages"]
        assert set(ages) == {0, 1}


class TestFleetConfigAndScatter:
    def make_fleet(self, partitions=4, nodes=2):
        config = FleetConfig(nodes=nodes, partitions=partitions)
        fleet = config.build()
        load_history(fleet.backend)
        fleet.create_region("r", 1.0, 0.25, heartbeat_interval=0.5)
        fleet.create_matview("inv_c", "inv", ["id", "qty"], region="r")
        fleet.run_for(3.0)
        return fleet

    def test_config_builds_sharded_backend(self):
        fleet = self.make_fleet()
        assert isinstance(fleet.backend, ShardedBackend)
        assert fleet.backend.partition_count == 4
        assert len(fleet.nodes) == 2
        topology = fleet.status()["backend"]
        assert topology["kind"] == "ShardedBackend"
        assert topology["partitions"] == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(nodes=0)
        with pytest.raises(ValueError):
            FleetConfig(partitions=0)
        with pytest.raises(ValueError):
            FleetConfig(nodes=2, names=["only"])
        backend = ShardedBackend(2)
        with pytest.raises(ValueError):
            FleetConfig(partitions=3, backend=backend).resolve_backend()
        config = FleetConfig(backend=backend)
        assert config.resolve_backend() is backend
        assert config.partitions == 2

    def test_plain_fleet_keeps_legacy_defaults(self):
        backend = load_history(BackendServer())
        fleet = CacheFleet(backend)
        assert len(fleet.nodes) == 3
        assert fleet.router.policy.name == "round_robin"

    def test_scatter_split_on_multi_shard_in(self):
        fleet = self.make_fleet()
        sql = (
            "SELECT i.id, i.qty FROM inv i WHERE i.id IN (1, 2, 30, 200) "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        legs = fleet.router.scatter_split(sql)
        assert legs is not None and len(legs) > 1
        assert all("CURRENCY BOUND" in leg_sql for _, leg_sql in legs)
        result = fleet.execute(sql)
        assert sorted(r[0] for r in result.rows) == [1, 2, 30, 200]
        assert len(result.shard_results) == len(legs)
        assert {leg.shard for leg in result.shard_results} == {
            s for s, _ in legs
        }

    def test_scatter_result_carries_stalest_shard_snapshot(self):
        fleet = self.make_fleet()
        sql = (
            "SELECT i.id FROM inv i WHERE i.id IN (1, 2, 30, 200) "
            "CURRENCY BOUND 60 SEC ON (i)"
        )
        result = fleet.execute(sql)
        leg_snapshots = [
            min(leg.context.snapshots_used)
            for leg in result.shard_results
            if leg.context.snapshots_used
        ]
        assert result.context.snapshots_used
        assert min(result.context.snapshots_used) == min(leg_snapshots)

    def test_no_split_for_single_shard_or_ordered_queries(self):
        fleet = self.make_fleet()
        assert fleet.router.scatter_split(
            "SELECT i.id FROM inv i WHERE i.id = 7"
        ) is None
        assert fleet.router.scatter_split(
            "SELECT i.id FROM inv i WHERE i.id IN (1, 2, 30) ORDER BY i.id"
        ) is None
        assert fleet.router.scatter_split(
            "SELECT COUNT(*) FROM inv i WHERE i.id IN (1, 2, 30)"
        ) is None

    def test_unsharded_fleet_never_splits(self):
        backend = load_history(BackendServer())
        fleet = CacheFleet(backend, n_nodes=2)
        assert fleet.router.scatter_split(
            "SELECT i.id FROM inv i WHERE i.id IN (1, 2, 30)"
        ) is None


class TestShardedChaos:
    def test_seeded_run_with_one_shard_dark(self):
        fleet = build_demo_fleet(n_nodes=2, n_rows=200, partitions=2)
        chaos = ChaosScheduler(fleet, seed=7)
        chaos.crash("node1", at=3.0, restart_after=4.0)
        chaos.shard_outage(0, at=8.0, duration=3.0)
        report = chaos.run(20.0)
        summary = report.summary()
        assert summary["invariant_violations"] == 0
        assert summary["faults_injected"] == 2
        assert any(f["kind"] == "shard_outage" for f in report.faults)
        assert summary["queries"] > 0

    def test_random_schedule_places_shard_outages_only_when_sharded(self):
        sharded = build_demo_fleet(n_nodes=2, n_rows=100, partitions=2)
        chaos = ChaosScheduler(sharded, seed=3)
        chaos.random_schedule(20.0)
        assert any(f["kind"] == "shard_outage" for f in chaos.faults)
        plain = build_demo_fleet(n_nodes=2, n_rows=100)
        chaos2 = ChaosScheduler(plain, seed=3)
        chaos2.random_schedule(20.0)
        assert not any(f["kind"] == "shard_outage" for f in chaos2.faults)

    def test_sharded_run_is_deterministic(self):
        def one_run():
            fleet = build_demo_fleet(n_nodes=2, n_rows=100, partitions=2)
            chaos = ChaosScheduler(fleet, seed=5)
            chaos.random_schedule(15.0)
            report = chaos.run(15.0)
            return report.summary(), report.history_lines()

        assert one_run() == one_run()
