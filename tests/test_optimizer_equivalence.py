"""Property-based equivalence: optimized plans == naive evaluation.

For randomly generated single-block queries, the cost-based optimizer's
chosen plan must return exactly the rows the straightforward interpreter
produces.  This guards the whole plan space — access-path selection, join
order and algorithm (hash/merge/NL), residual placement, aggregation —
against semantic drift.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.backend import BackendServer


@pytest.fixture(scope="module")
def server():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE r (a INT NOT NULL, b INT NOT NULL, c FLOAT NOT NULL, "
        "PRIMARY KEY (a))"
    )
    backend.create_table(
        "CREATE TABLE s (x INT NOT NULL, y INT NOT NULL, PRIMARY KEY (x))"
    )
    backend.create_table(
        "CREATE TABLE u (p INT NOT NULL, q INT NOT NULL, PRIMARY KEY (p))"
    )
    r_rows = ", ".join(f"({i}, {i % 7}, {float(i % 13)})" for i in range(1, 61))
    s_rows = ", ".join(f"({i}, {i % 5})" for i in range(1, 41))
    u_rows = ", ".join(f"({i}, {i % 3})" for i in range(1, 31))
    backend.execute(f"INSERT INTO r VALUES {r_rows}")
    backend.execute(f"INSERT INTO s VALUES {s_rows}")
    backend.execute(f"INSERT INTO u VALUES {u_rows}")
    backend.execute("CREATE INDEX ix_r_b ON r (b)")
    backend.refresh_statistics()
    return backend


_predicates_r = st.sampled_from([
    "", "r.a < 20", "r.b = 3", "r.c > 5.0", "r.a BETWEEN 10 AND 40",
    "r.b = 3 AND r.a < 30", "r.a < 20 OR r.c > 10.0", "NOT r.b = 2",
    "r.b IN (1, 2, 3)",
])
_predicates_join = st.sampled_from([
    "", "s.y = 2", "r.a + s.x < 30", "s.y < r.b",
])


def _naive_rows(server, sql):
    from repro.engine.executor import ExecutionContext
    from repro.sql.parser import parse

    ctx = ExecutionContext(clock=server.clock)
    root, _, _ = server._build_naive(parse(sql))
    return server.executor.execute(root, ctx=ctx).rows


class TestSingleTableEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(predicate=_predicates_r,
           items=st.sampled_from(["r.a", "r.a, r.c", "r.b, r.a", "r.a, r.b, r.c"]))
    def test_scan_queries(self, server, predicate, items):
        where = f" WHERE {predicate}" if predicate else ""
        sql = f"SELECT {items} FROM r{where}"
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(predicate=_predicates_r)
    def test_aggregates(self, server, predicate):
        where = f" WHERE {predicate}" if predicate else ""
        sql = (
            f"SELECT r.b, COUNT(*) AS n, SUM(r.c) AS total FROM r{where} GROUP BY r.b"
        )
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql


class TestJoinEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pred_r=_predicates_r, pred_join=_predicates_join)
    def test_two_way_joins(self, server, pred_r, pred_join):
        conjuncts = ["r.a = s.x"]
        if pred_r:
            conjuncts.append(pred_r)
        if pred_join:
            conjuncts.append(pred_join)
        sql = f"SELECT r.a, r.b, s.y FROM r, s WHERE {' AND '.join(conjuncts)}"
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pred=_predicates_r,
           join2=st.sampled_from(["s.x = u.p", "r.b = u.q"]))
    def test_three_way_joins(self, server, pred, join2):
        conjuncts = ["r.a = s.x", join2]
        if pred:
            conjuncts.append(pred)
        sql = (
            f"SELECT r.a, s.y, u.q FROM r, s, u WHERE {' AND '.join(conjuncts)}"
        )
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pred=st.sampled_from(["", "x.b = 2", "y.b = 3", "x.a < y.a"]))
    def test_self_joins(self, server, pred):
        conjuncts = ["x.b = y.b"]
        if pred:
            conjuncts.append(pred)
        sql = f"SELECT x.a, y.a FROM r x, r y WHERE {' AND '.join(conjuncts)}"
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql


class TestSemiJoinEquivalence:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pred=_predicates_r,
           inner=st.sampled_from(["s.y = 2", "s.y < 3", "s.x > 20", ""]))
    def test_in_subquery_matches_naive(self, server, pred, inner):
        inner_where = f" WHERE {inner}" if inner else ""
        conjuncts = [f"r.b IN (SELECT s.y FROM s{inner_where})"]
        if pred:
            conjuncts.append(pred)
        sql = f"SELECT r.a, r.b FROM r WHERE {' AND '.join(conjuncts)}"
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql


class TestOrderDistinctLimitEquivalence:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pred=_predicates_r, desc=st.booleans())
    def test_order_by_prefixes_agree(self, server, pred, desc):
        where = f" WHERE {pred}" if pred else ""
        direction = "DESC" if desc else "ASC"
        sql = f"SELECT r.a FROM r{where} ORDER BY r.a {direction}"
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert optimized == naive, sql  # total order on a unique key

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pred=_predicates_r)
    def test_distinct(self, server, pred):
        where = f" WHERE {pred}" if pred else ""
        sql = f"SELECT DISTINCT r.b FROM r{where}"
        optimized = server.execute(sql).rows
        naive = _naive_rows(server, sql)
        assert Counter(optimized) == Counter(naive), sql
