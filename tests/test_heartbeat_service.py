"""Tests for the heartbeat service: per-region rates, stop/start, and the
replication-log visibility of beats."""

import pytest

from repro.cache.backend import BackendServer
from repro.replication.heartbeat import HEARTBEAT_TABLE, local_heartbeat_name


@pytest.fixture()
def backend():
    return BackendServer()


class TestHeartbeatService:
    def test_register_creates_row(self, backend):
        backend.heartbeats.register_region("r1", beat_interval=2.0, start=False)
        hb = backend.catalog.table(HEARTBEAT_TABLE).table
        assert hb.row_count == 1
        rows = [v for _, v in hb.scan()]
        assert rows[0][0] == "r1"

    def test_beats_update_timestamp(self, backend):
        backend.heartbeats.register_region("r1", beat_interval=2.0)
        backend.run_for(7.0)
        hb = backend.catalog.table(HEARTBEAT_TABLE).table
        (values,) = [v for _, v in hb.scan()]
        assert values[1] == 6.0  # last beat at t=6

    def test_beats_go_through_the_log(self, backend):
        backend.heartbeats.register_region("r1", beat_interval=1.0)
        before = len(backend.txn_manager.log)
        backend.run_for(3.0)
        assert len(backend.txn_manager.log) == before + 3

    def test_per_region_rates(self, backend):
        backend.heartbeats.register_region("fast", beat_interval=1.0)
        backend.heartbeats.register_region("slow", beat_interval=5.0)
        backend.run_for(5.0)
        hb = backend.catalog.table(HEARTBEAT_TABLE).table
        values = {v[0]: v[1] for _, v in hb.scan()}
        assert values["fast"] == 5.0
        assert values["slow"] == 5.0
        backend.run_for(3.0)
        values = {v[0]: v[1] for _, v in hb.scan()}
        assert values["fast"] == 8.0
        assert values["slow"] == 5.0  # next slow beat at t=10

    def test_stop_halts_beats(self, backend):
        backend.heartbeats.register_region("r1", beat_interval=1.0)
        backend.run_for(2.0)
        backend.heartbeats.stop("r1")
        backend.run_for(5.0)
        hb = backend.catalog.table(HEARTBEAT_TABLE).table
        (values,) = [v for _, v in hb.scan()]
        assert values[1] == 2.0

    def test_restart_with_new_rate(self, backend):
        backend.heartbeats.register_region("r1", beat_interval=5.0)
        backend.heartbeats.start("r1", 1.0)  # re-arm faster
        backend.run_for(3.0)
        hb = backend.catalog.table(HEARTBEAT_TABLE).table
        (values,) = [v for _, v in hb.scan()]
        assert values[1] == 3.0

    def test_local_heartbeat_name(self):
        assert local_heartbeat_name("CR1") == "heartbeat_cr1"

    def test_manual_beat(self, backend):
        backend.heartbeats.register_region("r1", beat_interval=100.0, start=False)
        backend.clock.advance(42.0)
        backend.heartbeats.beat("r1")
        hb = backend.catalog.table(HEARTBEAT_TABLE).table
        (values,) = [v for _, v in hb.scan()]
        assert values[1] == 42.0
