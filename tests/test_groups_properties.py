"""Hypothesis properties for the §8.6 group-consistency model driven by
random row-refresh schedules."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.backend import BackendServer
from repro.catalog.catalog import Catalog
from repro.replication.row_refresh import RowRefreshAgent
from repro.semantics.groups import GroupConsistencyChecker, group_delta, validity_interval
from repro.semantics.model import HistoryView

N_ROWS = 8


def build():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE obj (id INT NOT NULL, grp INT NOT NULL, val INT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    rows = ", ".join(f"({i}, {i % 3}, {i * 10})" for i in range(1, N_ROWS + 1))
    backend.execute(f"INSERT INTO obj VALUES {rows}")
    backend.refresh_statistics()
    catalog = Catalog()
    catalog.create_table("obj", backend.catalog.table("obj").schema,
                         primary_key=["id"], shadow=True)
    catalog.create_region("rr", 10.0, 0.0)
    view = catalog.create_matview("obj_copy", "obj", ["id", "grp", "val"], region="rr")
    agent = RowRefreshAgent(view, backend.catalog, backend.txn_manager, backend.clock)
    agent.refresh_all()
    return backend, view, agent


# A schedule step: update a row's master value, or refresh one view row.
schedules = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(1, N_ROWS)),
        st.tuples(st.just("refresh"), st.integers(1, N_ROWS)),
    ),
    min_size=1,
    max_size=24,
)


class TestRowRefreshProperties:
    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_per_row_granularity_always_consistent(self, schedule):
        backend, view, agent = build()
        for kind, row_id in schedule:
            if kind == "update":
                backend.execute(f"UPDATE obj SET val = val + 1 WHERE id = {row_id}")
            else:
                agent.refresh_row((row_id,))
        checker = GroupConsistencyChecker(backend)
        assert checker.check(view, agent.sync_of, by_columns=["id"]).consistent

    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_refresh_all_restores_snapshot_consistency(self, schedule):
        backend, view, agent = build()
        for kind, row_id in schedule:
            if kind == "update":
                backend.execute(f"UPDATE obj SET val = val + 1 WHERE id = {row_id}")
            else:
                agent.refresh_row((row_id,))
        agent.refresh_all()
        checker = GroupConsistencyChecker(backend)
        assert checker.check(view, agent.sync_of).consistent

    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_view_values_match_master_at_sync_points(self, schedule):
        backend, view, agent = build()
        for kind, row_id in schedule:
            if kind == "update":
                backend.execute(f"UPDATE obj SET val = val + 1 WHERE id = {row_id}")
            else:
                agent.refresh_row((row_id,))
        history = HistoryView(backend.txn_manager.log)
        ci = view.table.clustered_index()
        for _, values in view.table.scan():
            pk = ci.key_of(values)
            sync = agent.sync_of(pk)
            snapshot = history.snapshot("obj", up_to_txn=sync.sync_txn)
            assert snapshot.get(pk) == values

    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_zero_delta_iff_intervals_intersect(self, schedule):
        backend, view, agent = build()
        for kind, row_id in schedule:
            if kind == "update":
                backend.execute(f"UPDATE obj SET val = val + 1 WHERE id = {row_id}")
            else:
                agent.refresh_row((row_id,))
        history = HistoryView(backend.txn_manager.log)
        members = [
            (pk, agent.sync_of(pk).sync_txn)
            for pk in sorted(agent.sync)
        ]
        delta = group_delta(history, "obj", members)
        last = history.last_txn
        lo = 0
        hi = last
        for pk, sync in members:
            ilo, ihi = validity_interval(history, "obj", pk, sync)
            lo = max(lo, ilo)
            hi = min(hi, ihi if ihi is not None else last)
        intersects = lo <= hi
        assert (delta == 0) == intersects
