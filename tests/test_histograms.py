"""Tests for equi-depth histograms and their use in selectivity."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.statistics import ColumnStats, Histogram


class TestHistogramConstruction:
    def test_uniform_boundaries(self):
        hist = Histogram.from_values(list(range(100)), buckets=4)
        assert hist.bucket_count == 4
        assert hist.boundaries[0] == 0
        assert hist.boundaries[-1] == 99

    def test_fewer_values_than_buckets(self):
        hist = Histogram.from_values([1, 2, 3], buckets=32)
        assert hist.bucket_count <= 3

    def test_single_value_column(self):
        hist = Histogram.from_values([7] * 50)
        assert hist.selectivity(low=7, high=7) == pytest.approx(1.0)
        assert hist.selectivity(low=8) == 0.0

    def test_requires_boundaries(self):
        with pytest.raises(ValueError):
            Histogram([5])


class TestHistogramSelectivity:
    def test_full_range(self):
        hist = Histogram.from_values(list(range(100)))
        assert hist.selectivity() == 1.0

    def test_half_range_uniform(self):
        hist = Histogram.from_values(list(range(1000)))
        assert hist.selectivity(low=0, high=499) == pytest.approx(0.5, abs=0.05)

    def test_out_of_range(self):
        hist = Histogram.from_values(list(range(100)))
        assert hist.selectivity(low=200) == 0.0
        assert hist.selectivity(high=-5) == 0.0

    def test_open_ended(self):
        hist = Histogram.from_values(list(range(1000)))
        assert hist.selectivity(low=900) == pytest.approx(0.1, abs=0.05)
        assert hist.selectivity(high=100) == pytest.approx(0.1, abs=0.05)

    def test_skewed_data_beats_uniform_interpolation(self):
        # 90% of values in [0, 10], 10% in [990, 1000]: a range over the
        # dense region must estimate ~0.9, not ~1%.
        values = [random.Random(1).uniform(0, 10) for _ in range(900)] + [
            random.Random(2).uniform(990, 1000) for _ in range(100)
        ]
        stats = ColumnStats.from_values(values)
        estimated = stats.range_selectivity(low=0, high=10)
        assert estimated == pytest.approx(0.9, abs=0.05)
        # Min/max interpolation alone would have said ~1%:
        no_hist = ColumnStats(min=min(values), max=max(values))
        assert no_hist.range_selectivity(low=0, high=10) < 0.05

    def test_heavy_duplicates(self):
        values = [5] * 800 + list(range(100, 300))
        hist = Histogram.from_values(values)
        assert hist.selectivity(low=5, high=5) == pytest.approx(0.8, abs=0.08)

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=20, max_size=300),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_estimate_close_to_truth(self, values, a, b):
        low, high = sorted((a, b))
        hist = Histogram.from_values(values)
        truth = sum(1 for v in values if low <= v <= high) / len(values)
        estimate = hist.selectivity(low=low, high=high)
        # One bucket of slack either way plus interpolation error.
        slack = 2.0 / hist.bucket_count + 0.1
        assert abs(estimate - truth) <= slack

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=20, max_size=200))
    def test_monotone_in_high_bound(self, values):
        hist = Histogram.from_values(values)
        lo = min(values)
        points = sorted({lo + (max(values) - lo) * f for f in (0.1, 0.4, 0.7, 1.0)})
        estimates = [hist.selectivity(low=None, high=p) for p in points]
        assert estimates == sorted(estimates)


class TestColumnStatsIntegration:
    def test_histogram_built_for_numeric(self):
        stats = ColumnStats.from_values(list(range(50)))
        assert stats.histogram is not None

    def test_no_histogram_for_strings(self):
        stats = ColumnStats.from_values([f"s{i}" for i in range(50)])
        assert stats.histogram is None

    def test_no_histogram_for_tiny_columns(self):
        stats = ColumnStats.from_values([1, 2, 3])
        assert stats.histogram is None

    def test_opt_out(self):
        stats = ColumnStats.from_values(list(range(50)), with_histogram=False)
        assert stats.histogram is None

    def test_non_numeric_bound_falls_back(self):
        stats = ColumnStats.from_values(list(range(50)))
        # A string bound cannot use the numeric histogram.
        assert 0.0 <= stats.range_selectivity(low="x") <= 1.0

    def test_nulls_excluded(self):
        stats = ColumnStats.from_values([None] * 10 + list(range(40)))
        assert stats.histogram is not None
        assert stats.null_count == 10
