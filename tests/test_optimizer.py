"""Tests for the optimizer internals: analysis, costing, access paths."""

import math

import pytest

from repro.cache.backend import BackendServer
from repro.common.errors import CatalogError, OptimizerError
from repro.optimizer.cost import CostModel, guard_probability
from repro.optimizer.placement import estimate_selectivity
from repro.optimizer.query_info import analyze_select
from repro.sql.parser import parse


@pytest.fixture()
def server():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE r (a INT NOT NULL, b INT NOT NULL, c FLOAT, PRIMARY KEY (a))"
    )
    backend.create_table(
        "CREATE TABLE s (x INT NOT NULL, y INT NOT NULL, PRIMARY KEY (x))"
    )
    for i in range(1, 101):
        backend.execute(f"INSERT INTO r VALUES ({i}, {i % 10}, {float(i)})")
        backend.execute(f"INSERT INTO s VALUES ({i}, {i % 5})")
    backend.refresh_statistics()
    return backend


class TestGuardProbability:
    """Paper §3.2.4, formula (1)."""

    def test_below_delay_zero(self):
        assert guard_probability(3.0, delay=5.0, interval=10.0) == 0.0

    def test_at_delay_zero(self):
        assert guard_probability(5.0, delay=5.0, interval=10.0) == 0.0

    def test_linear_region(self):
        assert guard_probability(10.0, delay=5.0, interval=10.0) == pytest.approx(0.5)
        assert guard_probability(7.0, delay=5.0, interval=10.0) == pytest.approx(0.2)

    def test_above_cycle_one(self):
        assert guard_probability(20.0, delay=5.0, interval=10.0) == 1.0

    def test_boundary_exactly_delay_plus_interval(self):
        assert guard_probability(15.0, delay=5.0, interval=10.0) == pytest.approx(1.0)

    def test_continuous_propagation(self):
        # f = 0: step function at B = d.
        assert guard_probability(6.0, delay=5.0, interval=0.0) == 1.0
        assert guard_probability(4.0, delay=5.0, interval=0.0) == 0.0

    def test_unbounded(self):
        assert guard_probability(math.inf, delay=5.0, interval=10.0) == 1.0
        assert guard_probability(None, delay=5.0, interval=10.0) == 1.0

    def test_monotone_in_bound(self):
        probs = [guard_probability(b, 5.0, 10.0) for b in range(0, 30)]
        assert probs == sorted(probs)


class TestCostModel:
    def test_switch_union_formula(self):
        cm = CostModel(guard_cost=10.0)
        assert cm.switch_union(0.25, 100.0, 200.0) == pytest.approx(
            0.25 * 100 + 0.75 * 200 + 10.0
        )

    def test_transfer_includes_rpc(self):
        cm = CostModel(remote_query_overhead=50.0, net_byte=2.0)
        assert cm.transfer(10, 4.0) == pytest.approx(50.0 + 80.0)

    def test_sort_nlogn(self):
        cm = CostModel(sort_row_log=1.0)
        assert cm.sort(8) == pytest.approx(24.0)
        assert cm.sort(1) == 1.0


class TestAnalyze:
    def test_operands_and_joins(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r, s WHERE r.a = s.x AND r.b > 3"), server.catalog
        )
        assert set(info.from_order) == {"r", "s"}
        assert len(info.join_conjuncts) == 1
        assert len(info.operand("r").conjuncts) == 1
        assert info.operand("r").sargs[0].column == "b"

    def test_unqualified_columns_resolve_uniquely(self, server):
        info = analyze_select(parse("SELECT a FROM r WHERE c > 1"), server.catalog)
        assert info.operand("r").needed_columns >= {"a", "c"}

    def test_ambiguous_column_raises(self, server):
        server.create_table("CREATE TABLE r2 (a INT NOT NULL, PRIMARY KEY (a))")
        with pytest.raises(CatalogError):
            analyze_select(parse("SELECT a FROM r, r2"), server.catalog)

    def test_between_yields_two_sargs(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r WHERE r.c BETWEEN 1 AND 5"), server.catalog
        )
        ops = sorted(s.op for s in info.operand("r").sargs)
        assert ops == ["<=", ">="]

    def test_flipped_comparison_normalized(self, server):
        info = analyze_select(parse("SELECT r.a FROM r WHERE 10 > r.a"), server.catalog)
        sarg = info.operand("r").sargs[0]
        assert sarg.op == "<"
        assert sarg.value == 10

    def test_negative_literal_sarg(self, server):
        info = analyze_select(parse("SELECT r.a FROM r WHERE r.c > -5"), server.catalog)
        assert info.operand("r").sargs[0].value == -5

    def test_residual_conjunct_classified(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r, s WHERE r.a = s.x AND r.b + s.y > 4"),
            server.catalog,
        )
        assert len(info.residual_conjuncts) == 1

    def test_non_equijoin_is_residual(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r, s WHERE r.a < s.x"), server.catalog
        )
        assert len(info.join_conjuncts) == 0
        assert len(info.residual_conjuncts) == 1

    def test_aggregate_detection(self, server):
        info = analyze_select(
            parse("SELECT r.b, COUNT(*) AS n FROM r GROUP BY r.b"), server.catalog
        )
        assert info.is_aggregate
        kinds = [i.kind for i in info.agg_items]
        assert kinds == ["group", "agg"]

    def test_nongrouped_column_rejected(self, server):
        with pytest.raises(OptimizerError):
            analyze_select(
                parse("SELECT r.a, COUNT(*) AS n FROM r GROUP BY r.b"), server.catalog
            )

    def test_star_expansion(self, server):
        info = analyze_select(parse("SELECT * FROM r"), server.catalog)
        assert [name for _, name in info.items] == ["a", "b", "c"]

    def test_from_subquery_flags_complex(self, server):
        info = analyze_select(
            parse("SELECT t.a FROM (SELECT a FROM r) t"), server.catalog
        )
        assert info.complex

    def test_where_subquery_becomes_post_conjunct(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.x = r.a)"),
            server.catalog,
        )
        assert not info.complex
        assert len(info.post_conjuncts) == 1
        # Conservative: every column of r marked needed.
        assert info.operand("r").needed_columns == {"a", "b", "c"}

    def test_unknown_table_raises(self, server):
        with pytest.raises(CatalogError):
            analyze_select(parse("SELECT z.a FROM zzz z"), server.catalog)


class TestSelectivity:
    def test_eq_uses_ndv(self, server):
        info = analyze_select(parse("SELECT r.a FROM r WHERE r.a = 5"), server.catalog)
        operand = info.operand("r")
        sel = estimate_selectivity(operand.stats, operand.conjuncts, operand.sargs)
        assert sel == pytest.approx(0.01)

    def test_range_interpolates(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r WHERE r.c BETWEEN 1 AND 50"), server.catalog
        )
        operand = info.operand("r")
        sel = estimate_selectivity(operand.stats, operand.conjuncts, operand.sargs)
        assert 0.3 < sel < 0.7

    def test_conjunction_multiplies(self, server):
        info = analyze_select(
            parse("SELECT r.a FROM r WHERE r.a = 5 AND r.b = 3"), server.catalog
        )
        operand = info.operand("r")
        sel = estimate_selectivity(operand.stats, operand.conjuncts, operand.sargs)
        assert sel == pytest.approx(0.01 * 0.1)


class TestBackendPlans:
    def test_join_uses_equijoin_not_cartesian(self, server):
        plan = server.optimize("SELECT r.a, s.y FROM r, s WHERE r.a = s.x")
        result = server.execute("SELECT r.a, s.y FROM r, s WHERE r.a = s.x")
        assert len(result.rows) == 100

    def test_nl_join_available_for_selective_outer(self, server):
        # Selective predicate on r, join into s's pk: NL join should win.
        plan = server.optimize(
            "SELECT r.a, s.y FROM r, s WHERE r.a = s.x AND r.a = 5"
        )
        assert "IndexNLJoin" in plan.explain() or "IndexSeek" in plan.explain()

    def test_three_way_join(self, server):
        server.create_table("CREATE TABLE t3 (x INT NOT NULL, z INT, PRIMARY KEY (x))")
        for i in range(1, 101):
            server.execute(f"INSERT INTO t3 VALUES ({i}, {i})")
        server.refresh_statistics()
        result = server.execute(
            "SELECT r.a, t3.z FROM r, s, t3 WHERE r.a = s.x AND s.x = t3.x AND r.a < 5"
        )
        assert len(result.rows) == 4

    def test_plan_reusable_across_executions(self, server):
        plan = server.optimize("SELECT r.a FROM r WHERE r.a < 5")
        root = plan.root()
        from repro.engine.executor import Executor

        executor = Executor()
        first = executor.execute(root, column_names=plan.column_names)
        second = executor.execute(root, column_names=plan.column_names)
        assert first.rows == second.rows

    def test_order_by_select_alias(self, server):
        result = server.execute(
            "SELECT r.b AS grp, COUNT(*) AS n FROM r GROUP BY r.b ORDER BY grp DESC"
        )
        assert result.rows[0][0] == 9
