"""Tests for clocks and the discrete-event scheduler."""

import pytest

from repro.common.clock import SimulatedClock, WallClock
from repro.common.scheduler import EventScheduler


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimulatedClock(start=5.0).now() == 5.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(2.5)
        assert clock.now() == 2.5
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_advance_returns_new_time(self):
        clock = SimulatedClock()
        assert clock.advance(1.0) == 1.0

    def test_advance_rejects_negative(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_set_absolute(self):
        clock = SimulatedClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_rejects_past(self):
        clock = SimulatedClock(start=5.0)
        with pytest.raises(ValueError):
            clock.set(4.0)

    def test_zero_advance_allowed(self):
        clock = SimulatedClock()
        clock.advance(0.0)
        assert clock.now() == 0.0


class TestWallClock:
    def test_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a >= 0.0


class TestEventScheduler:
    def setup_method(self):
        self.clock = SimulatedClock()
        self.scheduler = EventScheduler(self.clock)
        self.fired = []

    def test_one_shot_fires_at_time(self):
        self.scheduler.at(5.0, lambda: self.fired.append(self.clock.now()))
        self.scheduler.run_until(10.0)
        assert self.fired == [5.0]
        assert self.clock.now() == 10.0

    def test_one_shot_does_not_fire_early(self):
        self.scheduler.at(5.0, lambda: self.fired.append("x"))
        self.scheduler.run_until(4.9)
        assert self.fired == []

    def test_after_schedules_relative(self):
        self.clock.advance(3.0)
        self.scheduler.after(2.0, lambda: self.fired.append(self.clock.now()))
        self.scheduler.run_until(10.0)
        assert self.fired == [5.0]

    def test_cannot_schedule_in_past(self):
        self.clock.advance(5.0)
        with pytest.raises(ValueError):
            self.scheduler.at(4.0, lambda: None)

    def test_periodic_fires_repeatedly(self):
        self.scheduler.every(2.0, lambda: self.fired.append(self.clock.now()))
        self.scheduler.run_until(7.0)
        assert self.fired == [2.0, 4.0, 6.0]

    def test_periodic_with_explicit_start(self):
        self.scheduler.every(5.0, lambda: self.fired.append(self.clock.now()), start=1.0)
        self.scheduler.run_until(12.0)
        assert self.fired == [1.0, 6.0, 11.0]

    def test_periodic_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            self.scheduler.every(0.0, lambda: None)

    def test_cancel_stops_future_firings(self):
        event = self.scheduler.every(1.0, lambda: self.fired.append(self.clock.now()))
        self.scheduler.run_until(2.5)
        event.cancel()
        self.scheduler.run_until(10.0)
        assert self.fired == [1.0, 2.0]

    def test_events_fire_in_time_order(self):
        self.scheduler.at(3.0, lambda: self.fired.append("b"))
        self.scheduler.at(1.0, lambda: self.fired.append("a"))
        self.scheduler.at(7.0, lambda: self.fired.append("c"))
        self.scheduler.run_until(10.0)
        assert self.fired == ["a", "b", "c"]

    def test_tie_broken_by_registration_order(self):
        self.scheduler.at(5.0, lambda: self.fired.append("first"))
        self.scheduler.at(5.0, lambda: self.fired.append("second"))
        self.scheduler.run_until(5.0)
        assert self.fired == ["first", "second"]

    def test_callback_may_schedule_more_events(self):
        def chain():
            self.fired.append(self.clock.now())
            if self.clock.now() < 3.0:
                self.scheduler.after(1.0, chain)

        self.scheduler.after(1.0, chain)
        self.scheduler.run_until(10.0)
        assert self.fired == [1.0, 2.0, 3.0]

    def test_run_until_returns_fire_count(self):
        self.scheduler.every(1.0, lambda: None)
        assert self.scheduler.run_until(3.5) == 3

    def test_run_for_advances_relative(self):
        self.clock.advance(2.0)
        self.scheduler.run_for(3.0)
        assert self.clock.now() == 5.0

    def test_clock_shows_event_time_during_callback(self):
        self.scheduler.at(4.0, lambda: self.fired.append(self.clock.now()))
        self.scheduler.run_until(100.0)
        assert self.fired == [4.0]

    def test_pending_counts_live_events(self):
        event = self.scheduler.at(5.0, lambda: None)
        self.scheduler.every(1.0, lambda: None)
        assert self.scheduler.pending == 2
        event.cancel()
        assert self.scheduler.pending == 1

    def test_two_periodic_events_interleave(self):
        self.scheduler.every(2.0, lambda: self.fired.append(("a", self.clock.now())))
        self.scheduler.every(3.0, lambda: self.fired.append(("b", self.clock.now())))
        self.scheduler.run_until(6.0)
        # At the t=6 tie, 'b' fires first: it was rescheduled at t=3,
        # before 'a' was rescheduled at t=4.
        assert self.fired == [
            ("a", 2.0),
            ("b", 3.0),
            ("a", 4.0),
            ("b", 6.0),
            ("a", 6.0),
        ]
