"""Tests for the back-end's naive recursive path: derived tables,
subqueries in various positions, and their combinations."""

import pytest

from repro.cache.backend import BackendServer


@pytest.fixture()
def server():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE orders (oid INT NOT NULL, cust INT NOT NULL, total FLOAT NOT NULL, "
        "PRIMARY KEY (oid))"
    )
    backend.create_table(
        "CREATE TABLE custs (cid INT NOT NULL, name VARCHAR(10) NOT NULL, PRIMARY KEY (cid))"
    )
    backend.execute("INSERT INTO custs VALUES (1, 'ann'), (2, 'bob'), (3, 'cyd')")
    backend.execute(
        "INSERT INTO orders VALUES (1, 1, 10.0), (2, 1, 20.0), (3, 2, 5.0), "
        "(4, 2, 50.0), (5, 2, 45.0)"
    )
    backend.refresh_statistics()
    return backend


class TestDerivedTables:
    def test_aggregate_in_derived_table(self, server):
        result = server.execute(
            "SELECT t.cust, t.total FROM "
            "(SELECT o.cust AS cust, SUM(o.total) AS total FROM orders o GROUP BY o.cust) t "
            "WHERE t.total > 25 ORDER BY t.cust"
        )
        assert result.rows == [(1, 30.0), (2, 100.0)]

    def test_nested_derived_tables(self, server):
        result = server.execute(
            "SELECT x.n FROM (SELECT COUNT(*) AS n FROM "
            "(SELECT o.cust AS cust FROM orders o WHERE o.total > 15) inner1) x"
        )
        assert result.rows == [(3,)]  # orders 2 (20), 4 (50), 5 (45)

    def test_derived_table_with_order_and_limit(self, server):
        result = server.execute(
            "SELECT t.oid FROM (SELECT o.oid AS oid FROM orders o "
            "ORDER BY o.total DESC LIMIT 2) t ORDER BY t.oid"
        )
        # Top-two totals are orders 4 (50.0) and 5 (45.0); note the inner
        # ORDER BY is on a column that is *not* selected (sort runs below
        # the projection).
        assert result.rows == [(4,), (5,)]

    def test_derived_table_joined_with_base(self, server):
        result = server.execute(
            "SELECT c.name, t.n FROM custs c, "
            "(SELECT o.cust AS cust, COUNT(*) AS n FROM orders o GROUP BY o.cust) t "
            "WHERE c.cid = t.cust ORDER BY c.name"
        )
        assert result.rows == [("ann", 2), ("bob", 3)]

    def test_two_derived_tables_joined(self, server):
        result = server.execute(
            "SELECT a.cust FROM "
            "(SELECT o.cust AS cust FROM orders o WHERE o.total > 40) a, "
            "(SELECT o.cust AS cust FROM orders o WHERE o.total < 10) b "
            "WHERE a.cust = b.cust"
        )
        assert set(result.rows) == {(2,)}

    def test_distinct_in_derived_table(self, server):
        result = server.execute(
            "SELECT COUNT(*) AS n FROM (SELECT DISTINCT o.cust AS cust FROM orders o) t"
        )
        assert result.scalar() == 2


class TestSubqueryPositions:
    def test_exists_inside_derived_table(self, server):
        result = server.execute(
            "SELECT t.cid FROM (SELECT c.cid AS cid FROM custs c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust = c.cid)) t ORDER BY t.cid"
        )
        assert result.rows == [(1,), (2,)]

    def test_correlated_in_subquery(self, server):
        result = server.execute(
            "SELECT c.name FROM custs c WHERE c.cid IN "
            "(SELECT o.cust FROM orders o WHERE o.total > 40) "
        )
        assert result.rows == [("bob",)]

    def test_nested_exists(self, server):
        result = server.execute(
            "SELECT c.name FROM custs c WHERE EXISTS ("
            "SELECT 1 FROM orders o WHERE o.cust = c.cid AND EXISTS ("
            "SELECT 1 FROM orders o2 WHERE o2.cust = o.cust AND o2.total < 6)) "
        )
        assert result.rows == [("bob",)]

    def test_not_in_subquery(self, server):
        result = server.execute(
            "SELECT c.name FROM custs c WHERE c.cid NOT IN "
            "(SELECT o.cust FROM orders o)"
        )
        assert result.rows == [("cyd",)]

    def test_subquery_over_aggregated_derived_table(self, server):
        result = server.execute(
            "SELECT c.name FROM custs c WHERE c.cid IN ("
            "SELECT t.cust FROM (SELECT o.cust AS cust, COUNT(*) AS n "
            "FROM orders o GROUP BY o.cust) t WHERE t.n > 2)"
        )
        assert result.rows == [("bob",)]

    def test_having_with_inline_aggregate_is_unsupported(self, server):
        # Documented restriction: HAVING must reference grouping columns
        # or *named* aggregates from the select list; an inline COUNT(*)
        # in HAVING is rejected rather than silently miscomputed.
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            server.execute(
                "SELECT c.name FROM custs c WHERE c.cid IN "
                "(SELECT o.cust FROM orders o GROUP BY o.cust HAVING COUNT(*) > 2)"
            )


class TestNaiveMatchesOptimizer:
    def test_same_result_when_both_available(self, server):
        sql = "SELECT c.name, o.total FROM custs c, orders o WHERE c.cid = o.cust"
        optimized = server.execute(sql).rows
        from repro.sql.parser import parse
        from repro.engine.executor import ExecutionContext

        root, _, _ = server._build_naive(parse(sql))
        ctx = ExecutionContext(clock=server.clock)
        naive = server.executor.execute(root, ctx=ctx).rows
        assert sorted(optimized) == sorted(naive)
