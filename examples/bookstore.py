"""The paper's §2 bookstore: currency clauses E1-E4 and their semantics.

Shows how clauses normalize into C&C constraints (consistency classes +
bounds), including the multi-block examples of Figure 2.2, and runs the
queries against a two-region cache.

Run:  python examples/bookstore.py
"""

from repro import BackendServer, MTCache, constraint_from_select, parse
from repro.workloads.bookstore import load_bookstore


def show_constraint(title, sql):
    constraint, operands = constraint_from_select(parse(sql))
    print(f"\n{title}")
    print(f"  SQL: {sql}")
    print(f"  operands: {sorted(operands)}")
    for t in constraint:
        ops = ", ".join(sorted(t.operands))
        bound = "unbounded" if t.bound == float("inf") else f"{t.bound:g}s"
        by = f" by {[c.to_sql() for c in t.by_columns]}" if t.by_columns else ""
        print(f"  class ({ops}) within {bound}{by}")


JOIN = (
    "SELECT b.isbn, b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn"
)


def main():
    # ------------------------------------------------------------------
    # The clause zoo of Figure 2.1.
    # ------------------------------------------------------------------
    show_constraint("E1: shared 10-min bound, mutually consistent",
                    JOIN + " CURRENCY BOUND 10 MIN ON (b, r)")
    show_constraint("E2: separate classes, different bounds",
                    JOIN + " CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)")
    show_constraint("E3: per-group consistency via BY",
                    JOIN + " CURRENCY BOUND 10 MIN ON (b) BY b.isbn, 30 MIN ON (r) BY r.isbn")
    show_constraint("E4: one class, grouped by isbn",
                    JOIN + " CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn")

    # Figure 2.2 Q2: constraints across a derived table merge to the
    # tightest bound over the union of the base inputs.
    show_constraint(
        "Q2 (multi-block): derived table forces s, b, r onto one 5-min snapshot",
        "SELECT s.amount, t.isbn FROM sales s, "
        "(SELECT b.isbn AS isbn FROM books b, reviews r WHERE b.isbn = r.isbn "
        "CURRENCY BOUND 10 MIN ON (b, r)) t "
        "WHERE s.isbn = t.isbn CURRENCY BOUND 5 MIN ON (s, t)",
    )

    # ------------------------------------------------------------------
    # Execute against a two-region cache.
    # ------------------------------------------------------------------
    backend = BackendServer()
    load_bookstore(backend, n_books=100)
    cache = MTCache(backend)
    cache.create_region("books_region", update_interval=8, update_delay=2)
    cache.create_region("reviews_region", update_interval=12, update_delay=3)
    cache.create_matview("books_copy", "books", ["isbn", "title", "price"],
                         region="books_region")
    cache.create_matview("reviews_copy", "reviews",
                         ["review_id", "isbn", "rating"], region="reviews_region")
    cache.run_for(15)

    print("\n--- execution ---")
    # Mutual consistency required across regions -> must go remote.
    consistent = cache.execute(
        "SELECT b.title, r.rating FROM books b, reviews r "
        "WHERE b.isbn = r.isbn AND b.isbn < 5 "
        "CURRENCY BOUND 10 MIN ON (b, r)"
    )
    print("single class, two regions ->", consistent.plan.summary())

    # Relaxing consistency lets both replicas serve the join locally.
    relaxed = cache.execute(
        "SELECT b.title, r.rating FROM books b, reviews r "
        "WHERE b.isbn = r.isbn AND b.isbn < 5 "
        "CURRENCY BOUND 10 MIN ON (b), 10 MIN ON (r)"
    )
    print("separate classes          ->", relaxed.plan.summary(),
          "| rows:", len(relaxed.rows))

    # The books-with-sales query of Figure 2.2 (correlated EXISTS): the
    # cache ships subquery-bearing statements to the back-end wholesale.
    sales_query = cache.execute(
        "SELECT b.isbn, b.title FROM books b WHERE EXISTS "
        "(SELECT 1 FROM sales s WHERE s.isbn = b.isbn AND s.year = 2003) "
        "ORDER BY b.isbn LIMIT 5"
    )
    print("books with 2003 sales     ->", len(sales_query.rows), "rows (shipped remote)")


if __name__ == "__main__":
    main()
