"""The paper's §4 environment end to end: plan choices and workload shift.

Builds the TPCD back-end + MTCache with the Table 4.1 regions, shows the
optimizer's decisions for Q1-Q7 (Table 4.3 / Figure 4.1) and measures the
fraction of a repeated query served locally as the currency bound varies
(Figure 4.2(a) in miniature).

Run:  python examples/tpcd_cache.py
"""

from repro.optimizer.cost import guard_probability
from repro.workloads.experiment import build_paper_setup
from repro.workloads.queries import plan_choice_query


def main():
    setup = build_paper_setup(scale_factor=0.005)
    cache = setup.cache

    print("Currency regions (Table 4.1):")
    print(f"  {'cid':5} {'interval':>8} {'delay':>6}  views")
    for cid, interval, delay, view in setup.region_table():
        print(f"  {cid:5} {interval:8.0f} {delay:6.0f}  {view}")

    print("\nOptimizer plan choices (Table 4.3):")
    for name in ("q1", "q2", "q3", "q4", "q5", "q6", "q7"):
        plan = cache.optimize(plan_choice_query(name))
        print(f"  {name}: {plan.summary()}")

    # ------------------------------------------------------------------
    # Workload shift: how often does the guarded plan run locally as the
    # currency bound B grows?  (Figure 4.2(a), measured + analytic.)
    # ------------------------------------------------------------------
    region = cache.catalog.region("cr1")
    f, d = region.update_interval, region.update_delay
    print(f"\nWorkload shift for cust_prj (f={f:g}s, d={d:g}s):")
    print(f"  {'bound':>6} {'measured':>9} {'analytic':>9}")
    query = (
        "SELECT c.c_custkey FROM customer c WHERE c.c_custkey < 20 "
        "CURRENCY BOUND {b} SEC ON (c)"
    )
    for bound in (2, 5, 8, 12, 16, 20, 30):
        local = 0
        trials = 40
        for _ in range(trials):
            cache.run_for(f / trials * 3.7)  # spread start times over cycles
            result = cache.execute(query.format(b=bound))
            if result.context.branches and result.context.branches[0][1] == 0:
                local += 1
        measured = local / trials
        analytic = guard_probability(bound, d, f)
        print(f"  {bound:6.0f} {measured:9.2%} {analytic:9.2%}")


if __name__ == "__main__":
    main()
