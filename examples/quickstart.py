"""Quickstart: a back-end, a cache, one replicated view, one C&C query.

Run:  python examples/quickstart.py
"""

from repro import BackendServer, MTCache


def main():
    # ------------------------------------------------------------------
    # 1. The back-end (master) database.
    # ------------------------------------------------------------------
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE products (pid INT NOT NULL, name VARCHAR(30) NOT NULL, "
        "price FLOAT NOT NULL, PRIMARY KEY (pid))"
    )
    backend.execute(
        "INSERT INTO products VALUES (1, 'widget', 9.99), (2, 'gadget', 19.99), "
        "(3, 'gizmo', 4.99)"
    )
    backend.refresh_statistics()

    # ------------------------------------------------------------------
    # 2. The mid-tier cache: one currency region, one materialized view.
    #    The agent propagates every 10 (simulated) seconds with a 2-second
    #    delivery delay; the region's heartbeat beats every second.
    # ------------------------------------------------------------------
    cache = MTCache(backend)
    cache.create_region("r1", update_interval=10, update_delay=2, heartbeat_interval=1)
    cache.create_matview("products_copy", "products", ["pid", "name", "price"], region="r1")
    cache.run_for(11)  # let a propagation cycle complete

    # ------------------------------------------------------------------
    # 3. Queries with explicit currency & consistency constraints.
    # ------------------------------------------------------------------
    loose = cache.execute(
        "SELECT p.pid, p.name, p.price FROM products p "
        "CURRENCY BOUND 60 SEC ON (p)"
    )
    print("bound 60s  ->", loose.plan.summary(), "| branches:", loose.context.branches)
    for row in loose.rows:
        print("   ", row)

    # A price change on the back-end...
    cache.execute("UPDATE products SET price = 14.99 WHERE pid = 1")  # forwarded

    # ...is not yet visible through the loose-bound local read...
    stale_ok = cache.execute(
        "SELECT p.price FROM products p WHERE p.pid = 1 CURRENCY BOUND 600 SEC ON (p)"
    )
    print("bound 600s ->", stale_ok.rows[0][0], "(stale but within bound)")

    # ...but a tight bound forces the plan's remote branch, which sees it.
    fresh = cache.execute(
        "SELECT p.price FROM products p WHERE p.pid = 1 CURRENCY BOUND 1 SEC ON (p)"
    )
    print("bound 1s   ->", fresh.rows[0][0], "(remote branch:", fresh.plan.summary() + ")")

    # No currency clause at all = traditional semantics: always current.
    default = cache.execute("SELECT p.price FROM products p WHERE p.pid = 1")
    print("no clause  ->", default.rows[0][0], "via", default.plan.summary())

    # After the next propagation the local view catches up.
    cache.run_for(12)
    caught_up = cache.execute(
        "SELECT p.price FROM products p WHERE p.pid = 1 CURRENCY BOUND 600 SEC ON (p)"
    )
    print("after sync ->", caught_up.rows[0][0], "| branches:", caught_up.context.branches)

    # ------------------------------------------------------------------
    # 4. Every cache keeps an always-on metrics registry.
    # ------------------------------------------------------------------
    snap = cache.metrics.snapshot()
    print("routing    ->",
          {k: v for k, v in snap.items() if k.startswith("queries_total")})
    print("staleness  ->", snap['replication_staleness_seconds{region="r1"}'], "s")


if __name__ == "__main__":
    main()
