"""Per-group consistency (§8.6): when table-level snapshots are too much.

A review cache maintained by *row-level refresh* (quasi-copy style) is
rarely snapshot consistent as a whole — rows are refreshed independently —
but the currency clause's BY grouping columns let an application ask for
exactly the granularity it needs: "all reviews *of one book* must come
from the same snapshot; different books may differ."

This example drives the RowRefreshAgent and the GroupConsistencyChecker to
show which granularities hold as maintenance proceeds.

Run:  python examples/row_groups.py
"""

from repro import BackendServer
from repro.catalog.catalog import Catalog
from repro.replication.row_refresh import RowRefreshAgent
from repro.semantics.groups import GroupConsistencyChecker
from repro.workloads.bookstore import load_bookstore


def describe(checker, view, agent):
    table = checker.check(view, agent.sync_of)
    by_isbn = checker.check(view, agent.sync_of, by_columns=["isbn"])
    by_row = checker.check(view, agent.sync_of, by_columns=["review_id"])
    print(
        f"  table-level: {'consistent' if table.consistent else f'Δ={table.max_delta}'}"
        f" | per-isbn: {'consistent' if by_isbn.consistent else f'broken for {by_isbn.inconsistent_groups()}'}"
        f" | per-row: {'consistent' if by_row.consistent else 'broken'}"
    )


def main():
    backend = BackendServer()
    load_bookstore(backend, n_books=10)

    catalog = Catalog()
    catalog.create_table("reviews", backend.catalog.table("reviews").schema,
                         primary_key=["review_id"], shadow=True)
    catalog.create_region("rr", 10.0, 0.0)
    view = catalog.create_matview(
        "reviews_cache", "reviews", ["review_id", "isbn", "rating"], region="rr"
    )
    agent = RowRefreshAgent(view, backend.catalog, backend.txn_manager, backend.clock)
    agent.refresh_all()
    checker = GroupConsistencyChecker(backend)

    print("freshly synchronized cache:")
    describe(checker, view, agent)

    # The master changes; we refresh rows one at a time (round robin), as
    # a row-level maintenance policy would.
    print("\nmaster updated, three rows refreshed individually:")
    backend.execute("UPDATE reviews SET rating = 1 WHERE isbn = 1")
    backend.execute("UPDATE reviews SET rating = 5 WHERE isbn = 2")
    agent.refresh_round(3)
    describe(checker, view, agent)

    # Refreshing whole isbn groups restores the BY-isbn guarantee without
    # paying for a full table synchronization.
    print("\nafter refreshing the touched isbn groups together:")
    isbn_position = view.table.schema.index_of("isbn")
    agent.refresh_group([isbn_position], (1,))
    agent.refresh_group([isbn_position], (2,))
    describe(checker, view, agent)

    print("\nafter a full refresh (one snapshot again):")
    agent.refresh_all()
    describe(checker, view, agent)


if __name__ == "__main__":
    main()
