"""Timeline consistency (§2.3): making time move forward across queries.

Without a TIMEORDERED bracket a session may read fresh data remotely and
then *older* data from a lagging replica — even its own writes can vanish.
Inside the bracket, MTCache's currency guards additionally check the
session watermark, so later queries never use data older than what the
session has already seen.

Run:  python examples/timeline_session.py
"""

from repro import BackendServer, MTCache


def build():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE account (aid INT NOT NULL, balance FLOAT NOT NULL, "
        "PRIMARY KEY (aid))"
    )
    backend.execute("INSERT INTO account VALUES (1, 100.0)")
    backend.refresh_statistics()
    cache = MTCache(backend)
    cache.create_region("r1", update_interval=10, update_delay=2, heartbeat_interval=1)
    cache.create_matview("account_copy", "account", ["aid", "balance"], region="r1")
    cache.run_for(11)
    return cache


BALANCE_LOOSE = (
    "SELECT a.balance FROM account a WHERE a.aid = 1 CURRENCY BOUND 600 SEC ON (a)"
)
BALANCE_FRESH = (
    "SELECT a.balance FROM account a WHERE a.aid = 1 CURRENCY BOUND 0 SEC ON (a)"
)


def main():
    # ------------------------------------------------------------------
    # Anomaly without timeline consistency: a deposit "disappears".
    # ------------------------------------------------------------------
    cache = build()
    cache.execute("UPDATE account SET balance = 150.0 WHERE aid = 1")  # deposit
    fresh = cache.execute(BALANCE_FRESH).scalar()  # remote: sees 150
    stale = cache.execute(BALANCE_LOOSE).scalar()  # lagging replica: 100!
    print("without TIMEORDERED:")
    print(f"  fresh read : {fresh:.2f}")
    print(f"  next read  : {stale:.2f}   <- time moved backwards")

    # ------------------------------------------------------------------
    # With the bracket, the second read is forced to honor the watermark.
    # ------------------------------------------------------------------
    cache = build()
    cache.execute("BEGIN TIMEORDERED")
    cache.execute("UPDATE account SET balance = 150.0 WHERE aid = 1")
    fresh = cache.execute(BALANCE_FRESH).scalar()
    after = cache.execute(BALANCE_LOOSE)
    print("with TIMEORDERED:")
    print(f"  fresh read : {fresh:.2f}")
    print(
        f"  next read  : {after.scalar():.2f}   "
        f"(branch: {'local' if after.context.branches and after.context.branches[0][1] == 0 else 'remote'})"
    )
    cache.execute("END TIMEORDERED")

    # ------------------------------------------------------------------
    # Once replication catches up, the bracketed session can use the
    # replica again: its snapshot has passed the watermark.
    # ------------------------------------------------------------------
    cache.execute("BEGIN TIMEORDERED")
    cache.execute(BALANCE_FRESH)
    cache.run_for(13)  # replica catches up past the watermark
    relaxed = cache.execute(BALANCE_LOOSE)
    used = "local" if relaxed.context.branches and relaxed.context.branches[0][1] == 0 else "remote"
    print(f"after propagation: next read = {relaxed.scalar():.2f} via {used} branch")
    cache.execute("END TIMEORDERED")


if __name__ == "__main__":
    main()
