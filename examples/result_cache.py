"""Result caching with C&C-aware reuse (paper §1, third scenario).

An application-level cache of SQL query results: each cached result
remembers when it was computed; a later identical query reuses it only if
the result's age is within the query's currency bound, otherwise the cache
transparently recomputes — so the application is *always* guaranteed its
stated requirement, even though it is hitting a cache.

Run:  python examples/result_cache.py
"""

from repro import BackendServer
from repro.resultcache import ResultCache


def main():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE quotes (sym VARCHAR(6) NOT NULL, px FLOAT NOT NULL, "
        "PRIMARY KEY (sym))"
    )
    backend.execute(
        "INSERT INTO quotes VALUES ('AAA', 10.0), ('BBB', 20.0), ('CCC', 30.0)"
    )
    backend.refresh_statistics()

    cache = ResultCache(backend)
    dashboard = "SELECT q.sym, q.px FROM quotes q CURRENCY BOUND {b} SEC ON (q)"

    # A dashboard refreshing every few seconds tolerates 30-second staleness.
    cache.execute(dashboard.format(b=30))      # miss: computed
    cache.execute(dashboard.format(b=30))      # hit: served from cache
    cache.execute(dashboard.format(b=300))     # hit: looser bound, same key
    print("after 3 dashboard loads:", cache.stats)

    # Prices move; the cached result is now stale data...
    backend.execute("UPDATE quotes SET px = 11.5 WHERE sym = 'AAA'")
    backend.clock.advance(20.0)

    # ...but still within the dashboard's 30-second tolerance:
    stale = cache.execute(dashboard.format(b=30))
    print("within bound  ->", dict((s, p) for s, p in stale.rows)["aaa".upper()],
          "(cached, 20s old)", cache.stats)

    # A trading screen needs 5-second data: the same key fails the bound
    # and is transparently recomputed.
    fresh = cache.execute(dashboard.format(b=5))
    print("tight bound   ->", dict((s, p) for s, p in fresh.rows)["AAA"],
          "(recomputed)", cache.stats)

    # Writes through the cache invalidate dependent results immediately.
    cache.execute("UPDATE quotes SET px = 99.0 WHERE sym = 'BBB'")
    after_write = cache.execute(dashboard.format(b=300))
    print("after write   ->", dict((s, p) for s, p in after_write.rows)["BBB"],
          "(invalidated + recomputed)", cache.stats)


if __name__ == "__main__":
    main()
