"""Operating an MTCache: status, query log, policies and recovery.

A small ops-eye tour: watch region staleness with ``status()``, follow
query routing through the query log, switch the guard fallback policy, and
ride out an agent outage.

Run:  python examples/monitoring.py
"""

from repro import BackendServer, MTCache


def show_status(cache, title):
    print(f"\n--- {title} ---")
    for cid, info in sorted(cache.status().items()):
        bound = info["staleness_bound"]
        bound_text = f"{bound:6.2f}s" if bound is not None else "unknown"
        print(f"  region {cid}: staleness <= {bound_text}")
        for name, view in sorted(info["views"].items()):
            print(f"    {name}: {view['rows']} rows, snapshot age "
                  f"{view['snapshot_age']:.2f}s")


def main():
    backend = BackendServer()
    backend.create_table(
        "CREATE TABLE sensors (sid INT NOT NULL, reading FLOAT NOT NULL, "
        "PRIMARY KEY (sid))"
    )
    backend.execute(
        "INSERT INTO sensors VALUES " + ", ".join(f"({i}, {i * 1.5})" for i in range(1, 21))
    )
    backend.refresh_statistics()

    cache = MTCache(backend)
    cache.execute("CREATE CURRENCY REGION sensor_r INTERVAL 8 SEC DELAY 2 SEC HEARTBEAT 1 SEC")
    cache.execute(
        "CREATE MATERIALIZED VIEW sensors_copy IN REGION sensor_r AS SELECT * FROM sensors"
    )
    cache.run_for(9)
    show_status(cache, "after first propagation")

    # Normal operation: dashboards tolerate 30 seconds.
    dashboard = "SELECT s.sid, s.reading FROM sensors s CURRENCY BOUND 30 SEC ON (s)"
    for _ in range(3):
        cache.execute(dashboard)
        cache.run_for(2.5)
    print("\nquery log:", cache.query_log.summary())

    # Maintenance: the distribution agent stops; staleness grows.
    cache.agents["sensor_r"].stop()
    cache.run_for(40)
    show_status(cache, "during agent outage (40s, no propagation)")
    during = cache.execute(dashboard)
    print("dashboard during outage ->",
          "local" if during.context.branches[0][1] == 0 else "remote fallback")

    # Ops flips the policy to see which requirements would be violated if
    # the back-end were unreachable too.
    cache.fallback_policy = "serve_stale"
    flagged = cache.execute(dashboard)
    print("serve_stale policy      -> rows:", len(flagged.rows),
          "| warnings:", flagged.warnings)
    cache.fallback_policy = "remote"

    # Recovery: the agent resumes, the replica catches up.
    cache.agents["sensor_r"].start(cache.scheduler, interval=8)
    cache.run_for(9)
    show_status(cache, "after recovery")
    after = cache.execute(dashboard)
    print("dashboard after recovery ->",
          "local" if after.context.branches[0][1] == 0 else "remote")
    print("\nfinal query log:", cache.query_log.summary())

    # The metrics registry aggregates the same story as counters/gauges:
    # routing split, guard outcomes, staleness — ready for scraping.
    snap = cache.metrics.snapshot()
    print("\nmetrics snapshot (selected series):")
    for key in sorted(snap):
        if key.startswith(("queries_total", "currency_guard_total",
                           "replication_staleness_seconds",
                           "plan_cache_events_total")):
            print(f"  {key} = {snap[key]:g}")


if __name__ == "__main__":
    main()
